//! Typed message payloads.
//!
//! Messages travel as byte vectors; a [`Word`] is a fixed-size scalar with
//! an explicit little-endian wire encoding. Explicit encode/decode (rather
//! than transmutation) keeps the crate free of `unsafe`. The whole-slice
//! [`Word::encode_slice`]/[`Word::decode_slice`] hooks give every type an
//! optimiser-friendly fixed-width-chunk loop, and `u8` — the payload type
//! of the byte-oriented IMB transfer benchmarks — a literal `memcpy`.

/// A fixed-size scalar that can be carried in a message.
pub trait Word: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// The all-zero-bytes value of the type (what a freshly-posted MPI
    /// receive buffer holds). Lets callers build receive buffers without
    /// decoding a dummy zero from a scratch allocation.
    const ZERO: Self;
    /// Writes the little-endian encoding into `out` (exactly `SIZE` bytes).
    fn write_le(self, out: &mut [u8]);
    /// Reads a value from the little-endian encoding in `inp`.
    fn read_le(inp: &[u8]) -> Self;

    /// Encodes a whole slice into `out` (`out.len() == data.len() * SIZE`).
    /// Implementations specialise this into a memcpy-like loop; the
    /// default chunks through [`write_le`](Word::write_le).
    fn encode_slice(data: &[Self], out: &mut [u8]) {
        for (v, chunk) in data.iter().zip(out.chunks_exact_mut(Self::SIZE)) {
            v.write_le(chunk);
        }
    }

    /// Decodes a whole byte slice into `out`
    /// (`bytes.len() == out.len() * SIZE`). See [`encode_slice`](Word::encode_slice).
    fn decode_slice(bytes: &[u8], out: &mut [Self]) {
        for (v, chunk) in out.iter_mut().zip(bytes.chunks_exact(Self::SIZE)) {
            *v = Self::read_le(chunk);
        }
    }

    /// Encodes a whole slice into a fresh byte vector. The default
    /// zero-fills then overwrites; `u8` overrides it with `to_vec` so wire
    /// payloads are written exactly once.
    fn encode_vec(data: &[Self]) -> Vec<u8> {
        let mut out = vec![0u8; data.len() * Self::SIZE];
        Self::encode_slice(data, &mut out);
        out
    }
}

macro_rules! impl_word {
    ($($t:ty),*) => {$(
        impl Word for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const ZERO: Self = 0 as $t;
            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp.try_into().expect("word size mismatch"))
            }
            fn encode_slice(data: &[Self], out: &mut [u8]) {
                // Fixed-size array stores: no per-chunk length checks, so
                // the loop vectorises to a straight copy in release builds.
                for (v, chunk) in data
                    .iter()
                    .zip(out.chunks_exact_mut(std::mem::size_of::<$t>()))
                {
                    let arr: &mut [u8; std::mem::size_of::<$t>()] =
                        chunk.try_into().expect("exact chunk");
                    *arr = v.to_le_bytes();
                }
            }
            fn decode_slice(bytes: &[u8], out: &mut [Self]) {
                for (v, chunk) in out
                    .iter_mut()
                    .zip(bytes.chunks_exact(std::mem::size_of::<$t>()))
                {
                    let arr: &[u8; std::mem::size_of::<$t>()] =
                        chunk.try_into().expect("exact chunk");
                    *v = <$t>::from_le_bytes(*arr);
                }
            }
        }
    )*};
}

impl_word!(u16, u32, u64, i8, i16, i32, i64, f32, f64, usize, isize);

// `u8` payloads are already in wire format: encode/decode are memcpys.
impl Word for u8 {
    const SIZE: usize = 1;
    const ZERO: u8 = 0;
    #[inline]
    fn write_le(self, out: &mut [u8]) {
        out[0] = self;
    }
    #[inline]
    fn read_le(inp: &[u8]) -> u8 {
        inp[0]
    }
    #[inline]
    fn encode_slice(data: &[u8], out: &mut [u8]) {
        out.copy_from_slice(data);
    }
    #[inline]
    fn decode_slice(bytes: &[u8], out: &mut [u8]) {
        out.copy_from_slice(bytes);
    }
    #[inline]
    fn encode_vec(data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }
}

/// Encodes a slice of words into a fresh byte vector.
pub fn encode<T: Word>(data: &[T]) -> Vec<u8> {
    T::encode_vec(data)
}

/// Encodes a slice of words into a preallocated byte buffer
/// (`out.len() == data.len() * T::SIZE`).
pub fn encode_into<T: Word>(data: &[T], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        data.len() * T::SIZE,
        "encode buffer size mismatch"
    );
    T::encode_slice(data, out);
}

/// Decodes a byte buffer into a preallocated word slice
/// (`bytes.len() == out.len() * T::SIZE`).
pub fn decode_into<T: Word>(bytes: &[u8], out: &mut [T]) {
    assert_eq!(
        bytes.len(),
        out.len() * T::SIZE,
        "decode buffer size mismatch: {} bytes for {} words of {}",
        bytes.len(),
        out.len(),
        T::SIZE,
    );
    T::decode_slice(bytes, out);
}

/// Decodes a byte buffer into a fresh vector of words.
pub fn decode<T: Word>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length not a multiple of word size"
    );
    let mut out = vec![T::ZERO; bytes.len() / T::SIZE];
    T::decode_slice(bytes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data = [1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode(&data);
        assert_eq!(bytes.len(), 40);
        let back: Vec<f64> = decode(&bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_various_types() {
        let u = [1u64, u64::MAX, 42];
        assert_eq!(decode::<u64>(&encode(&u)), u);
        let i = [-1i32, i32::MIN, i32::MAX];
        assert_eq!(decode::<i32>(&encode(&i)), i);
        let b = [0u8, 255, 7];
        assert_eq!(decode::<u8>(&encode(&b)), b);
    }

    #[test]
    fn empty_slice() {
        let bytes = encode::<f64>(&[]);
        assert!(bytes.is_empty());
        assert!(decode::<f64>(&bytes).is_empty());
    }

    #[test]
    fn decode_into_preallocated() {
        let data = [3u32, 4, 5];
        let bytes = encode(&data);
        let mut out = [0u32; 3];
        decode_into(&bytes, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "decode buffer size mismatch")]
    fn decode_size_mismatch_panics() {
        let bytes = encode(&[1u64, 2]);
        let mut out = [0u64; 3];
        decode_into(&bytes, &mut out);
    }

    #[test]
    fn encoding_is_little_endian() {
        let bytes = encode(&[0x0102_0304u32]);
        assert_eq!(bytes, vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn zero_is_all_zero_bytes() {
        fn check<T: Word>() {
            let bytes = encode(&[T::ZERO]);
            assert!(bytes.iter().all(|&b| b == 0), "{:?}", T::ZERO);
        }
        check::<u8>();
        check::<u16>();
        check::<u32>();
        check::<u64>();
        check::<i8>();
        check::<i32>();
        check::<i64>();
        check::<f32>();
        check::<f64>();
        check::<usize>();
        check::<isize>();
    }

    #[test]
    fn slice_paths_match_word_at_a_time_paths() {
        let data: Vec<f64> = (0..37).map(|i| i as f64 * 1.25 - 3.0).collect();
        let mut fast = vec![0u8; data.len() * 8];
        f64::encode_slice(&data, &mut fast);
        let mut slow = vec![0u8; data.len() * 8];
        for (v, chunk) in data.iter().zip(slow.chunks_exact_mut(8)) {
            v.write_le(chunk);
        }
        assert_eq!(fast, slow);
        let mut out = vec![0.0f64; data.len()];
        f64::decode_slice(&fast, &mut out);
        assert_eq!(out, data);
    }
}
