//! Reduction operators for the global-reduction collectives.
//!
//! Mirrors the MPI predefined operations used by the paper's benchmarks
//! (`MPI_SUM` etc.): commutative, associative element-wise combiners.

use crate::datatype::Word;

/// A scalar type usable in reductions.
pub trait Numeric: Word {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Element-wise sum.
    fn add(self, other: Self) -> Self;
    /// Element-wise product.
    fn mul(self, other: Self) -> Self;
    /// Element-wise maximum.
    fn max_val(self, other: Self) -> Self;
    /// Element-wise minimum.
    fn min_val(self, other: Self) -> Self;
}

macro_rules! impl_numeric_int {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            fn zero() -> Self { 0 }
            fn one() -> Self { 1 }
            fn add(self, o: Self) -> Self { self.wrapping_add(o) }
            fn mul(self, o: Self) -> Self { self.wrapping_mul(o) }
            fn max_val(self, o: Self) -> Self { self.max(o) }
            fn min_val(self, o: Self) -> Self { self.min(o) }
        }
    )*};
}

impl_numeric_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

macro_rules! impl_numeric_float {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            fn zero() -> Self { 0.0 }
            fn one() -> Self { 1.0 }
            fn add(self, o: Self) -> Self { self + o }
            fn mul(self, o: Self) -> Self { self * o }
            fn max_val(self, o: Self) -> Self { self.max(o) }
            fn min_val(self, o: Self) -> Self { self.min(o) }
        }
    )*};
}

impl_numeric_float!(f32, f64);

/// A predefined reduction operation (the MPI_Op of a collective call).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Element-wise sum (`MPI_SUM`).
    Sum,
    /// Element-wise product (`MPI_PROD`).
    Prod,
    /// Element-wise maximum (`MPI_MAX`).
    Max,
    /// Element-wise minimum (`MPI_MIN`).
    Min,
}

impl Op {
    /// Applies the operation to a pair of elements.
    #[inline]
    pub fn apply<T: Numeric>(self, a: T, b: T) -> T {
        match self {
            Op::Sum => a.add(b),
            Op::Prod => a.mul(b),
            Op::Max => a.max_val(b),
            Op::Min => a.min_val(b),
        }
    }

    /// The identity element of the operation, where one exists. `Max`/`Min`
    /// have no portable identity; reductions seed with the first operand
    /// instead.
    pub fn identity<T: Numeric>(self) -> Option<T> {
        match self {
            Op::Sum => Some(T::zero()),
            Op::Prod => Some(T::one()),
            Op::Max | Op::Min => None,
        }
    }

    /// Combines `src` into `acc` element-wise (`acc[i] = op(acc[i], src[i])`).
    pub fn fold_into<T: Numeric>(self, acc: &mut [T], src: &[T]) {
        assert_eq!(acc.len(), src.len(), "reduction operand length mismatch");
        match self {
            // Specialised loops keep the hot path free of a per-element match.
            Op::Sum => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a = a.add(s);
                }
            }
            Op::Prod => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a = a.mul(s);
                }
            }
            Op::Max => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a = a.max_val(s);
                }
            }
            Op::Min => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a = a.min_val(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ops() {
        assert_eq!(Op::Sum.apply(2.0, 3.5), 5.5);
        assert_eq!(Op::Prod.apply(4u64, 5), 20);
        assert_eq!(Op::Max.apply(-3i32, 7), 7);
        assert_eq!(Op::Min.apply(-3i32, 7), -3);
    }

    #[test]
    fn fold_into_combines_elementwise() {
        let mut acc = vec![1.0f64, 2.0, 3.0];
        Op::Sum.fold_into(&mut acc, &[10.0, 20.0, 30.0]);
        assert_eq!(acc, vec![11.0, 22.0, 33.0]);
        Op::Max.fold_into(&mut acc, &[100.0, 0.0, 33.0]);
        assert_eq!(acc, vec![100.0, 22.0, 33.0]);
    }

    #[test]
    fn identities() {
        assert_eq!(Op::Sum.identity::<f64>(), Some(0.0));
        assert_eq!(Op::Prod.identity::<u32>(), Some(1));
        assert_eq!(Op::Max.identity::<f64>(), None);
    }

    #[test]
    fn integer_sum_wraps_instead_of_panicking() {
        assert_eq!(Op::Sum.apply(u8::MAX, 1u8), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_length_mismatch_panics() {
        let mut acc = vec![0.0f64; 2];
        Op::Sum.fold_into(&mut acc, &[1.0]);
    }
}
