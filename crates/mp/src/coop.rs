//! Cooperative rank scheduler: ranks as resumable tasks, not OS threads.
//!
//! Host limits (pid_max, vm.max_map_count, per-thread stacks) cap the
//! thread-per-rank runtime at a few thousand ranks; the paper-scale
//! virtual sweeps need 16k–100k. This module supplies two engines that
//! share one deterministic FIFO run-queue discipline:
//!
//! * the **cooperative executor** ([`run_coop`], [`run_traced_coop`],
//!   [`run_virtual_coop`], [`run_checked_coop`]): each rank body is an
//!   `async` future, polled on the caller's thread; every blocking
//!   receive ([`Mailbox::wait_ticket`](crate::mailbox) and friends)
//!   becomes a yield point. One OS thread hosts the whole world, so a
//!   100k-rank virtual run is just 100k boxed futures.
//! * the **baton engine** ([`Baton`]): the legacy thread-backed
//!   `run_with_virtual` path keeps its real threads but serialises them
//!   through the *same* FIFO queue — exactly one rank thread runs at a
//!   time, handing the baton over at the same blocking points where a
//!   cooperative task would yield. Both engines therefore produce the
//!   same rank interleaving, which makes virtual clocks byte-identical
//!   across them (the `simnet` first-fit reservation timelines are
//!   order-dependent under contention, so schedule determinism is what
//!   buys clock determinism).
//!
//! Task states (see DESIGN.md "Cooperative scheduler"): *queued* (rank id
//! in the run queue), *running* (being polled / holding the baton),
//! *blocked* (pending on a receive, waker parked in the hand-off slot),
//! *finished*. A blocked rank is woken by the sender that fills its
//! hand-off slot; wakes push the rank id back onto the FIFO queue.
//! Deadlock detection is *instant* in both engines — an empty queue with
//! unfinished ranks is definitive, no wall-clock timeout needed — and
//! composes with `mp::check`'s wait edges: a checked cooperative run
//! calls [`check::diagnose`] at the stall and unwinds the blocked tasks
//! with the cycle diagnosis.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::{Condvar, Mutex};
use simnet::{Time, Transfer};

use crate::check::{self, Checked, Event, RunLog, Settings};
use crate::comm::Comm;
use crate::runtime::{panic_message, World};
use crate::virt::VirtualNet;

thread_local! {
    /// True while this thread is polling a cooperative task.
    static IN_COOP: Cell<bool> = const { Cell::new(false) };
    /// The baton serialising this rank thread, if any (legacy virtual path).
    static CURRENT_BATON: RefCell<Option<(Arc<Baton>, usize)>> = const { RefCell::new(None) };
    /// Ambient exploration configuration (see [`install_explore`]).
    static EXPLORE: RefCell<Option<ScopedExplore>> = const { RefCell::new(None) };
}

// ---------------------------------------------------------------------
// Schedule controllers: every engine choice as an enumerable decision
// ---------------------------------------------------------------------

/// One matchable lane at a wildcard-receive choice point, in arrival
/// order (`seq` is the global arrival stamp of the lane front).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WildcardCandidate {
    /// Global source rank of the candidate lane.
    pub src: usize,
    /// Communicator id of the lane.
    pub comm: u32,
    /// In-communicator tag of the lane.
    pub tag: u32,
    /// Arrival stamp of the lane front (the message that would match).
    pub seq: u64,
}

/// A scheduling decision procedure for cooperative runs.
///
/// The cooperative engine has exactly two sources of schedule freedom:
/// which ready rank to poll next, and which queued lane a wildcard
/// receive matches when several hold messages. A controller is consulted
/// at both — each call is an enumerable choice point, which is the
/// substrate the `mpcheck` DPOR explorer drives. The engine's default
/// behaviour (no controller installed) is index 0 at every choice, i.e.
/// exactly [`FifoController`]; parity tests pin that equivalence.
///
/// The `note_*` hooks let a controller attribute communication effects
/// (sends, receive matches, posted receives) to scheduling steps without
/// a second instrumentation layer; default implementations ignore them.
pub trait ScheduleController: Send + Sync {
    /// Picks the next rank to poll from `ready` (engine FIFO order).
    /// Called only when `ready.len() >= 2`. Returns an index into `ready`.
    fn pick_ready(&self, ready: &[usize]) -> usize;

    /// Picks which candidate lane a wildcard receive on `rank` matches.
    /// `candidates` is sorted oldest-arrival-first and has length >= 2.
    /// Returns an index into `candidates`.
    fn pick_wildcard(&self, rank: usize, candidates: &[WildcardCandidate]) -> usize;

    /// Called immediately before `rank` is polled (every step, whether
    /// the pick was a real choice or forced).
    fn note_step(&self, rank: usize) {
        let _ = rank;
    }

    /// Called for every instrumentation event recorded on `rank`'s ring.
    fn note_event(&self, rank: usize, event: &Event) {
        let _ = (rank, event);
    }

    /// Called when `rank` registers a posted receive — a visible effect
    /// on its mailbox even before any message matches it.
    fn note_touch(&self, rank: usize) {
        let _ = rank;
    }

    /// Called when a new controlled world of `n` ranks starts.
    fn note_world(&self, n: usize) {
        let _ = n;
    }
}

/// The trivial controller: index 0 at every choice point, reproducing
/// the engine's FIFO ready order and oldest-arrival wildcard matching
/// byte for byte. Exists so parity tests can pin "controlled run with
/// FIFO controller == uncontrolled run".
pub struct FifoController;

impl ScheduleController for FifoController {
    fn pick_ready(&self, _ready: &[usize]) -> usize {
        0
    }

    fn pick_wildcard(&self, _rank: usize, _candidates: &[WildcardCandidate]) -> usize {
        0
    }
}

/// Ambient exploration configuration: while installed on a thread (see
/// [`install_explore`]), every cooperative run started from that thread
/// ([`run_coop`], [`run_virtual_coop`]) is instrumented, its scheduling
/// decisions are routed through `controller`, and its [`RunLog`] reaches
/// `sink` *before* any deadlock or rank panic propagates — so a schedule
/// explorer always sees what happened, even on failing schedules.
#[derive(Clone)]
pub struct ScopedExplore {
    /// Decides every ready-set pick and wildcard match of the run.
    pub controller: Arc<dyn ScheduleController>,
    /// Instrumentation settings. Perturbation is forced off: a controlled
    /// schedule subsumes (and supersedes) random perturbation.
    pub settings: Settings,
    /// Receives the log of every controlled run, on the installing
    /// thread, before failures propagate.
    pub sink: Arc<dyn Fn(RunLog) + Send + Sync>,
}

/// Installs `explore` on the current thread until the returned guard
/// drops. Cooperative runs started while installed run controlled; see
/// [`ScopedExplore`].
pub fn install_explore(explore: ScopedExplore) -> ExploreGuard {
    EXPLORE.with(|e| *e.borrow_mut() = Some(explore));
    ExploreGuard { _private: () }
}

/// Uninstalls the thread's ambient exploration configuration on drop.
pub struct ExploreGuard {
    _private: (),
}

impl Drop for ExploreGuard {
    fn drop(&mut self) {
        EXPLORE.with(|e| *e.borrow_mut() = None);
    }
}

fn explore_scoped() -> Option<ScopedExplore> {
    EXPLORE.with(|e| e.borrow().clone())
}

/// Whether the current thread is inside a cooperative task poll.
pub(crate) fn in_coop() -> bool {
    IN_COOP.with(Cell::get)
}

/// The baton (and rank) installed on this thread, if it is a
/// baton-serialised rank thread.
pub(crate) fn current_baton() -> Option<(Arc<Baton>, usize)> {
    CURRENT_BATON.with(|b| b.borrow().clone())
}

/// RAII: marks the current thread as polling a cooperative task. Also
/// pins the ambient worker pool to size 1 for the duration: a
/// cooperative world hosts up to 65k ranks on one OS thread, and a
/// kernel fanning out per rank would oversubscribe the host by orders
/// of magnitude (see `smp::pool`).
struct CoopGuard {
    prev: bool,
    _pool: smp::AmbientGuard,
}

impl CoopGuard {
    fn enter() -> CoopGuard {
        CoopGuard {
            prev: IN_COOP.with(|c| c.replace(true)),
            _pool: smp::AmbientGuard::serial(),
        }
    }
}

impl Drop for CoopGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_COOP.with(|c| c.set(prev));
    }
}

/// RAII: installs a baton + rank on the current thread.
pub(crate) struct BatonGuard;

impl BatonGuard {
    pub fn install(baton: Arc<Baton>, rank: usize) -> BatonGuard {
        CURRENT_BATON.with(|b| *b.borrow_mut() = Some((baton, rank)));
        BatonGuard
    }
}

impl Drop for BatonGuard {
    fn drop(&mut self) {
        CURRENT_BATON.with(|b| *b.borrow_mut() = None);
    }
}

/// FIFO run queue of rank ids, shared by wakers and the engine draining
/// it. Pushes coalesce: a rank already enqueued is not enqueued twice.
pub(crate) struct RunQueue {
    state: Mutex<QueueState>,
}

struct QueueState {
    queue: VecDeque<usize>,
    enqueued: Vec<bool>,
}

impl RunQueue {
    fn new(n: usize) -> Arc<RunQueue> {
        Arc::new(RunQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(n),
                enqueued: vec![false; n],
            }),
        })
    }

    fn push(&self, rank: usize) {
        let mut st = self.state.lock();
        if !st.enqueued[rank] {
            st.enqueued[rank] = true;
            st.queue.push_back(rank);
        }
    }

    fn pop(&self) -> Option<usize> {
        let mut st = self.state.lock();
        let rank = st.queue.pop_front()?;
        st.enqueued[rank] = false;
        Some(rank)
    }

    /// Pops the next rank to poll. Finished ranks (stale wakes) are
    /// dropped first so a controller only ever chooses among live tasks;
    /// with no controller — or fewer than two live candidates — this is
    /// exactly FIFO [`pop`](RunQueue::pop).
    fn pop_controlled(
        &self,
        ctl: Option<&Arc<dyn ScheduleController>>,
        live: &dyn Fn(usize) -> bool,
    ) -> Option<usize> {
        let mut st = self.state.lock();
        let mut i = 0;
        while i < st.queue.len() {
            let r = st.queue[i];
            if live(r) {
                i += 1;
            } else {
                st.enqueued[r] = false;
                st.queue.remove(i);
            }
        }
        let idx = match ctl {
            Some(ctl) if st.queue.len() >= 2 => {
                let ready: Vec<usize> = st.queue.iter().copied().collect();
                let pick = ctl.pick_ready(&ready);
                assert!(
                    pick < ready.len(),
                    "controller ready pick {pick} out of range (ready set of {})",
                    ready.len()
                );
                pick
            }
            _ => 0,
        };
        let rank = st.queue.remove(idx)?;
        st.enqueued[rank] = false;
        Some(rank)
    }
}

/// Waker of one rank task: waking pushes the rank onto the run queue.
struct TaskWaker {
    queue: Arc<RunQueue>,
    rank: usize,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.push(self.rank);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.push(self.rank);
    }
}

/// Drives a future that must complete without yielding: the bridge that
/// lets one source of truth (the `*_async` bodies) serve the synchronous
/// API. On rank threads every receive blocks the thread and completes
/// synchronously, so the future is ready after a single poll. Inside a
/// cooperative task this would park the whole executor, so it panics
/// with a pointer at the async API instead.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    assert!(
        !in_coop(),
        "mp: blocking call inside a cooperative task; use the async (*_async) API"
    );
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(r) => r,
        Poll::Pending => unreachable!(
            "mp: future pended outside the cooperative executor; blocking receives \
             complete synchronously on rank threads"
        ),
    }
}

/// Formats the instant-stall diagnosis of an uninstrumented cooperative
/// or baton run: which ranks are blocked and what unmatched traffic the
/// world still holds.
pub(crate) fn stall_message(world: &World, blocked: &[usize]) -> String {
    use std::fmt::Write;
    let mut msg = format!(
        "mp: deadlock: {} rank(s) blocked in receives with no runnable rank (ranks ",
        blocked.len()
    );
    for (i, r) in blocked.iter().take(8).enumerate() {
        if i > 0 {
            msg.push_str(", ");
        }
        let _ = write!(msg, "{r}");
    }
    if blocked.len() > 8 {
        msg.push_str(", ...");
    }
    msg.push(')');
    let mut lanes = Vec::new();
    for mb in &world.mailboxes {
        lanes.extend(mb.inventory());
    }
    if !lanes.is_empty() {
        let queued: usize = lanes.iter().map(|l| l.queued).sum();
        let _ = write!(msg, "; {queued} unmatched message(s) queued:");
        for lane in lanes {
            msg.push_str("\n  ");
            msg.push_str(&lane.to_string());
        }
    }
    msg
}

/// The cooperative executor: polls every rank task to completion on the
/// calling thread, FIFO over the shared run queue. Returns per-rank
/// results (`None` for panicked ranks) and the non-poison panics.
///
/// Uninstrumented worlds panic immediately on the first rank panic or
/// stall; instrumented worlds (world.inspector set) record panics, run
/// the remaining ranks on, and on a stall diagnose + poison-drain the
/// blocked tasks so the run log carries the deadlock.
fn execute<R, F, Fut>(world: &Arc<World>, f: &F) -> (Vec<Option<R>>, Vec<(usize, String)>)
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = R>,
{
    let n = world.n;
    let insp = world.inspector.clone();
    let ctl = world.controller.clone();
    let results: RefCell<Vec<Option<R>>> = RefCell::new((0..n).map(|_| None).collect());
    let mut tasks: Vec<Option<Pin<Box<dyn Future<Output = ()> + '_>>>> = (0..n)
        .map(|rank| {
            let fut = f(Comm::world(Arc::clone(world), rank));
            let results = &results;
            let task: Pin<Box<dyn Future<Output = ()> + '_>> = Box::pin(async move {
                let r = fut.await;
                results.borrow_mut()[rank] = Some(r);
            });
            Some(task)
        })
        .collect();
    let queue = RunQueue::new(n);
    for rank in 0..n {
        queue.push(rank);
    }
    let wakers: Vec<Waker> = (0..n)
        .map(|rank| {
            Waker::from(Arc::new(TaskWaker {
                queue: Arc::clone(&queue),
                rank,
            }))
        })
        .collect();

    let mut remaining = n;
    let mut panics: Vec<(usize, String)> = Vec::new();
    let mut poisoned_drain = false;
    loop {
        // Controller choices are suppressed during the poison drain: the
        // drained polls only unwind, so their order is not a schedule
        // decision an explorer should enumerate.
        let step_ctl = if poisoned_drain { None } else { ctl.as_ref() };
        while let Some(rank) = queue.pop_controlled(step_ctl, &|r| tasks[r].is_some()) {
            let Some(task) = tasks[rank].as_mut() else {
                continue;
            };
            if let Some(ctl) = step_ctl {
                ctl.note_step(rank);
            }
            let mut cx = Context::from_waker(&wakers[rank]);
            let polled = {
                let _in = CoopGuard::enter();
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    task.as_mut().poll(&mut cx)
                }))
            };
            match polled {
                Ok(Poll::Pending) => {}
                Ok(Poll::Ready(())) => {
                    tasks[rank] = None;
                    remaining -= 1;
                    if let Some(insp) = &insp {
                        insp.finish(rank);
                    }
                }
                Err(e) => {
                    tasks[rank] = None;
                    remaining -= 1;
                    let msg = panic_message(&*e).to_string();
                    match &insp {
                        None => panic!("rank {rank} panicked: {msg}"),
                        Some(insp) => {
                            insp.finish(rank);
                            if !msg.starts_with(check::POISON_MARK) {
                                panics.push((rank, msg));
                            }
                        }
                    }
                }
            }
        }
        if remaining == 0 || poisoned_drain {
            break;
        }
        // The queue is empty with unfinished ranks: on a single-threaded
        // executor that is a definitive deadlock (wakes happen during
        // polls; none are in flight).
        let blocked: Vec<usize> = (0..n).filter(|&r| tasks[r].is_some()).collect();
        match &insp {
            None => panic!("{}", stall_message(world, &blocked)),
            Some(insp) => match check::diagnose(world, insp) {
                Some(diagnosis) => {
                    insp.set_poison(diagnosis);
                    // Re-run every blocked task once: each receive future
                    // notices the poison and unwinds with the diagnosis.
                    for &r in &blocked {
                        queue.push(r);
                    }
                    poisoned_drain = true;
                }
                None => panic!("{}", stall_message(world, &blocked)),
            },
        }
    }
    drop(tasks);
    (results.into_inner(), panics)
}

/// Runs `f` as an SPMD program over `n` cooperative rank tasks on the
/// calling thread and returns per-rank results in rank order. The
/// cooperative mirror of [`crate::run`]: `f` receives an owned world
/// [`Comm`] and returns a future (write `move |comm| async move { .. }`).
/// Panics if any rank panics or the world deadlocks (detected instantly,
/// no timeout).
pub fn run_coop<R, F, Fut>(n: usize, f: F) -> Vec<R>
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = R>,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    crate::transport::assert_no_session("run_coop");
    if let Some(explore) = explore_scoped() {
        let (results, _) = run_explored(n, &explore, None, &f);
        return results
            .into_iter()
            .map(|r| r.expect("no deadlock, no panics, so every rank completed"))
            .collect();
    }
    let world = Arc::new(World::new(n, false, None));
    let (results, _) = execute(&world, &f);
    results
        .into_iter()
        .map(|r| r.expect("uninstrumented cooperative runs panic on rank failure"))
        .collect()
}

/// One controlled, instrumented cooperative world: the ambient-explore
/// path behind [`run_coop`] and [`run_virtual_coop`]. The run log
/// reaches the sink *before* any deadlock or rank panic propagates, so
/// an explorer sees what happened even on failing schedules.
fn run_explored<R, F, Fut>(
    n: usize,
    explore: &ScopedExplore,
    net: Option<Box<dyn VirtualNet>>,
    f: &F,
) -> (Vec<Option<R>>, Vec<Time>)
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = R>,
{
    let mut settings = explore.settings.clone();
    settings.perturb = false;
    let seed = settings.seed;
    explore.controller.note_world(n);
    let inspector = Arc::new(check::Inspector::new_observed(
        n,
        settings,
        Some(Arc::clone(&explore.controller)),
    ));
    let mut world = World::new_controlled(
        n,
        false,
        Some(Arc::clone(&inspector)),
        Some(Arc::clone(&explore.controller)),
    );
    if let Some(net) = net {
        world.virtual_net = Some(net);
        world.virtual_clocks = (0..n).map(|_| Mutex::new(Time::ZERO)).collect();
    }
    let world = Arc::new(world);
    let (results, panics) = execute(&world, f);
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank tasks completed");
    let mut leftover = Vec::new();
    for mb in &world.mailboxes {
        leftover.extend(mb.inventory());
    }
    let (events, dropped) = inspector.drain_events();
    let deadlock = inspector.poisoned();
    (explore.sink)(RunLog {
        n,
        seed,
        events,
        dropped,
        leftover,
        deadlock: deadlock.clone(),
    });
    if let Some(d) = deadlock {
        panic!("{}{d}", check::POISON_MARK);
    }
    if let Some((rank, msg)) = panics.first() {
        panic!("rank {rank} panicked: {msg}");
    }
    let clocks = world
        .virtual_clocks
        .into_iter()
        .map(Mutex::into_inner)
        .collect();
    (results, clocks)
}

/// Cooperative mirror of [`crate::run_traced`]: returns per-rank results
/// plus every point-to-point transfer in (deterministic) delivery order.
pub fn run_traced_coop<R, F, Fut>(n: usize, f: F) -> (Vec<R>, Vec<Transfer>)
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = R>,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    crate::transport::assert_no_session("run_traced_coop");
    let world = Arc::new(World::new(n, true, None));
    let (results, _) = execute(&world, &f);
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank tasks completed");
    let trace = world
        .trace
        .map(Mutex::into_inner)
        .expect("tracing was enabled");
    let results = results
        .into_iter()
        .map(|r| r.expect("uninstrumented cooperative runs panic on rank failure"))
        .collect();
    (results, trace)
}

/// Cooperative mirror of [`crate::run_virtual`]: runs `f` over `n` rank
/// tasks with every message priced by `net`, and returns the per-rank
/// results and final virtual clocks. Deterministic: the FIFO schedule
/// fixes the order in which messages hit the simulated resource
/// timelines, so clocks are byte-identical run to run (and identical to
/// the baton-serialised thread-backed path).
pub fn run_virtual_coop<R, F, Fut>(n: usize, net: Box<dyn VirtualNet>, f: F) -> (Vec<R>, Vec<Time>)
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = R>,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    crate::transport::assert_no_session("run_virtual_coop");
    if let Some(explore) = explore_scoped() {
        let (results, clocks) = run_explored(n, &explore, Some(net), &f);
        let results = results
            .into_iter()
            .map(|r| r.expect("no deadlock, no panics, so every rank completed"))
            .collect();
        return (results, clocks);
    }
    let mut world = World::new(n, false, None);
    world.virtual_net = Some(net);
    world.virtual_clocks = (0..n).map(|_| Mutex::new(Time::ZERO)).collect();
    let world = Arc::new(world);
    let (results, _) = execute(&world, &f);
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank tasks completed");
    let clocks = world
        .virtual_clocks
        .into_iter()
        .map(Mutex::into_inner)
        .collect();
    let results = results
        .into_iter()
        .map(|r| r.expect("uninstrumented cooperative runs panic on rank failure"))
        .collect();
    (results, clocks)
}

/// Cooperative mirror of the instrumented (checked) run path: rank
/// panics are collected rather than propagated, and a deadlock is
/// diagnosed at the instant of the stall — no detector thread, no poll
/// interval — then poison-drained so the [`RunLog`] carries the cycle.
pub fn run_checked_coop<R, F, Fut>(n: usize, settings: Settings, f: F) -> Checked<R>
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = R>,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    crate::transport::assert_no_session("run_checked_coop");
    let seed = settings.seed;
    let inspector = Arc::new(check::Inspector::new(n, settings));
    let world = Arc::new(World::new(n, false, Some(Arc::clone(&inspector))));
    let (results, panics) = execute(&world, &f);
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank tasks completed");
    let mut leftover = Vec::new();
    for mb in &world.mailboxes {
        leftover.extend(mb.inventory());
    }
    let (events, dropped) = inspector.drain_events();
    let deadlock = inspector.poisoned();
    let complete = results.iter().all(Option::is_some);
    Checked {
        results: complete.then(|| {
            results
                .into_iter()
                .map(|r| r.expect("checked above"))
                .collect()
        }),
        panics,
        log: RunLog {
            n,
            seed,
            events,
            dropped,
            leftover,
            deadlock,
        },
    }
}

/// Like [`run_checked_coop`], but with every scheduling decision made by
/// `controller`: the direct entry point of the schedule explorer. Rank
/// panics are collected and deadlocks diagnosed into the log rather than
/// propagated; perturbation is forced off (a controlled schedule subsumes
/// it).
pub fn run_controlled_coop<R, F, Fut>(
    n: usize,
    settings: Settings,
    controller: Arc<dyn ScheduleController>,
    f: F,
) -> Checked<R>
where
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = R>,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    crate::transport::assert_no_session("run_controlled_coop");
    let mut settings = settings;
    settings.perturb = false;
    let seed = settings.seed;
    controller.note_world(n);
    let inspector = Arc::new(check::Inspector::new_observed(
        n,
        settings,
        Some(Arc::clone(&controller)),
    ));
    let world = Arc::new(World::new_controlled(
        n,
        false,
        Some(Arc::clone(&inspector)),
        Some(controller),
    ));
    let (results, panics) = execute(&world, &f);
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank tasks completed");
    let mut leftover = Vec::new();
    for mb in &world.mailboxes {
        leftover.extend(mb.inventory());
    }
    let (events, dropped) = inspector.drain_events();
    let deadlock = inspector.poisoned();
    let complete = results.iter().all(Option::is_some);
    Checked {
        results: complete.then(|| {
            results
                .into_iter()
                .map(|r| r.expect("checked above"))
                .collect()
        }),
        panics,
        log: RunLog {
            n,
            seed,
            events,
            dropped,
            leftover,
            deadlock,
        },
    }
}

// ---------------------------------------------------------------------
// Baton engine: serialise real rank threads onto the same FIFO schedule
// ---------------------------------------------------------------------

/// Unwind payload prefix of a baton teardown (stall or peer panic):
/// the join loop filters these so only the real panic propagates.
pub(crate) const TEARDOWN_MARK: &str = "mp: world torn down\n";

/// Why a baton world is being torn down.
enum BatonPoison {
    /// No rank is runnable but some are unfinished (the message holds
    /// the full stall diagnosis).
    Stall(String),
    /// A rank body panicked; peers unwind and the join loop reports it.
    Abort,
}

/// Builds the stall diagnosis from the set of blocked ranks.
pub(crate) type StallDiag = Box<dyn Fn(&[usize]) -> String + Send + Sync>;

/// Serialises the rank threads of a thread-backed run through the
/// cooperative FIFO schedule: exactly one thread runs at a time, and the
/// baton changes hands at the blocking points where a cooperative task
/// would yield. See the module docs for why this determinism matters.
pub(crate) struct Baton {
    queue: Arc<RunQueue>,
    state: Mutex<BatonState>,
    cv: Condvar,
    /// Builds the stall diagnosis (captures the world for its mailbox
    /// inventory); boxed so `runtime` can construct it without exposing
    /// `World` here.
    diag: StallDiag,
}

struct BatonState {
    current: Option<usize>,
    running: bool,
    finished: Vec<bool>,
    unfinished: usize,
    poison: Option<BatonPoison>,
}

impl Baton {
    /// A baton for `n` rank threads; all ranks start queued in rank
    /// order. Call [`open`](Baton::open) once every thread is spawned.
    pub fn new(n: usize, diag: StallDiag) -> Arc<Baton> {
        let queue = RunQueue::new(n);
        for rank in 0..n {
            queue.push(rank);
        }
        Arc::new(Baton {
            queue,
            state: Mutex::new(BatonState {
                current: None,
                running: false,
                finished: vec![false; n],
                unfinished: n,
                poison: None,
            }),
            cv: Condvar::new(),
            diag,
        })
    }

    /// Starts the world: grants the baton to the first queued rank.
    pub fn open(&self) {
        let mut st = self.state.lock();
        st.running = true;
        self.grant_next(&mut st);
        self.cv.notify_all();
    }

    /// Parks the calling rank thread until it is granted the baton for
    /// the first time. Unwinds with a teardown panic if the world is
    /// poisoned before that happens.
    pub fn wait_initial(&self, rank: usize) {
        let mut st = self.state.lock();
        loop {
            if st.poison.is_some() {
                teardown_panic(&st);
            }
            if st.running && st.current == Some(rank) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Gives up the baton (the rank is blocking on a receive) and parks
    /// until re-granted — which happens only after this rank's waker has
    /// pushed it back onto the queue, i.e. after its message arrived.
    pub fn block_current(&self, rank: usize) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.current, Some(rank), "only the running rank may block");
        st.current = None;
        self.grant_next(&mut st);
        self.cv.notify_all();
        loop {
            if st.poison.is_some() {
                teardown_panic(&st);
            }
            if st.current == Some(rank) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Requeues the calling rank and hands the baton to the next queued
    /// rank, parking until re-granted. Used by polling waits (rendezvous
    /// storage) that have no waker hook.
    pub fn yield_now(&self, rank: usize) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.current, Some(rank), "only the running rank may yield");
        self.queue.push(rank);
        st.current = None;
        self.grant_next(&mut st);
        self.cv.notify_all();
        loop {
            if st.poison.is_some() {
                teardown_panic(&st);
            }
            if st.current == Some(rank) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Marks the calling rank finished and passes the baton on.
    pub fn finish(&self, rank: usize) {
        let mut st = self.state.lock();
        if st.current == Some(rank) {
            st.current = None;
        }
        if !st.finished[rank] {
            st.finished[rank] = true;
            st.unfinished -= 1;
        }
        if st.unfinished > 0 {
            self.grant_next(&mut st);
        }
        self.cv.notify_all();
    }

    /// Marks the calling rank finished after a panic and poisons the
    /// world so every parked peer unwinds. An existing stall poison is
    /// preserved (teardown unwinds also land here via `catch_unwind`).
    pub fn abort(&self, rank: usize) {
        let mut st = self.state.lock();
        if st.current == Some(rank) {
            st.current = None;
        }
        if !st.finished[rank] {
            st.finished[rank] = true;
            st.unfinished -= 1;
        }
        if st.poison.is_none() {
            st.poison = Some(BatonPoison::Abort);
        }
        self.cv.notify_all();
    }

    /// A waker for `rank` that pushes it back onto this baton's queue.
    pub fn waker_for(&self, rank: usize) -> Waker {
        Waker::from(Arc::new(TaskWaker {
            queue: Arc::clone(&self.queue),
            rank,
        }))
    }

    /// Takes the stall diagnosis, if the world stalled.
    pub fn take_stall(&self) -> Option<String> {
        match self.state.lock().poison.take() {
            Some(BatonPoison::Stall(msg)) => Some(msg),
            _ => None,
        }
    }

    /// Grants the baton to the next queued unfinished rank; with an
    /// empty queue and unfinished ranks, diagnoses the stall and poisons
    /// the world (instant deadlock detection, same as the executor).
    fn grant_next(&self, st: &mut BatonState) {
        while let Some(next) = self.queue.pop() {
            if !st.finished[next] {
                st.current = Some(next);
                return;
            }
        }
        if st.unfinished > 0 && st.poison.is_none() {
            let blocked: Vec<usize> = st
                .finished
                .iter()
                .enumerate()
                .filter(|(_, &done)| !done)
                .map(|(r, _)| r)
                .collect();
            st.poison = Some(BatonPoison::Stall((self.diag)(&blocked)));
        }
    }
}

/// Unwinds the calling rank thread with a marked teardown panic.
fn teardown_panic(st: &BatonState) -> ! {
    let reason = match &st.poison {
        Some(BatonPoison::Stall(msg)) => msg.clone(),
        _ => "a peer rank panicked".to_string(),
    };
    panic!("{TEARDOWN_MARK}{reason}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::schedule::P2pCost;

    #[test]
    fn coop_results_come_back_in_rank_order() {
        let out = run_coop(8, |comm| async move { comm.rank() * 10 });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn coop_ring_passes_messages() {
        let n = 5;
        let out = run_coop(n, move |comm| async move {
            let me = comm.rank();
            comm.send(&[me as u64], (me + 1) % n, 1);
            let mut buf = [0u64; 1];
            comm.recv_async(&mut buf, (me + n - 1) % n, 1).await;
            buf[0]
        });
        let expect: Vec<u64> = (0..n).map(|r| ((r + n - 1) % n) as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: boom")]
    fn coop_rank_panic_propagates() {
        run_coop(4, |comm| async move {
            if comm.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "mp: deadlock: 2 rank(s) blocked")]
    fn coop_deadlock_is_detected_instantly() {
        // Both ranks receive, nobody sends: with threads this waits out
        // a 20 s timeout; the executor sees the empty run queue at once.
        run_coop(2, |comm| async move {
            let mut b = [0u8; 1];
            let from = comm.rank() ^ 1;
            comm.recv_async(&mut b, from, 1).await;
        });
    }

    #[test]
    #[should_panic(expected = "blocking call inside a cooperative task")]
    fn blocking_collective_inside_coop_is_rejected() {
        run_coop(2, |comm| async move {
            comm.barrier();
        });
    }

    #[test]
    fn traced_coop_matches_traced_threads() {
        let (r_thread, mut t_thread) = crate::runtime::run_traced(4, |comm| {
            let mut v = vec![0u64; 4];
            comm.allgather(&[comm.rank() as u64 + 7], &mut v);
            v
        });
        let (r_coop, mut t_coop) = run_traced_coop(4, |comm| async move {
            let mut v = vec![0u64; 4];
            comm.allgather_async(&[comm.rank() as u64 + 7], &mut v)
                .await;
            v
        });
        assert_eq!(r_thread, r_coop);
        // Thread delivery order is nondeterministic; compare as multisets.
        let key = |t: &Transfer| (t.src, t.dst, t.bytes);
        t_thread.sort_by_key(key);
        t_coop.sort_by_key(key);
        assert_eq!(t_thread, t_coop);
    }

    /// Fixed-cost pricing for clock-parity tests (mirrors virt.rs).
    struct TestNet;

    impl VirtualNet for TestNet {
        fn p2p(&self, _s: usize, _d: usize, bytes: u64, ready: Time) -> P2pCost {
            let dur = Time::from_us(10.0) + Time::from_secs(bytes as f64 / 1e9);
            P2pCost {
                sender_done: ready + Time::from_us(1.0),
                arrival: ready + dur,
            }
        }
        fn compute(&self, flops: f64, eff: f64) -> Time {
            Time::from_secs(flops / (1e9 * eff))
        }
        fn stream(&self, bytes: f64) -> Time {
            Time::from_secs(bytes / 1e9)
        }
    }

    #[test]
    fn virtual_coop_ping_pong_accumulates_latency() {
        let iters = 5;
        let (_, clocks) = run_virtual_coop(2, Box::new(TestNet), move |comm| async move {
            let me = comm.rank();
            let buf = [0u8; 0];
            for _ in 0..iters {
                if me == 0 {
                    comm.send(&buf, 1, 1);
                    let mut r = [0u8; 0];
                    comm.recv_async(&mut r, 1, 1).await;
                } else {
                    let mut r = [0u8; 0];
                    comm.recv_async(&mut r, 0, 1).await;
                    comm.send(&buf, 0, 1);
                }
            }
        });
        let expect = 2.0 * 10.0 * iters as f64;
        assert!(
            (clocks[0].as_us() - expect).abs() < 1e-6,
            "clock {} vs {expect}",
            clocks[0].as_us()
        );
    }

    #[test]
    fn virtual_coop_clocks_match_threaded_virtual() {
        // Satellite: byte-identical clocks across the two engines.
        let body_sync = |comm: &Comm| {
            let mut x = vec![comm.rank() as f64 + 1.0; 3];
            comm.allreduce(&mut x, crate::reduce::Op::Sum);
            comm.v_sync();
            x
        };
        let (r_thread, c_thread) = crate::virt::run_virtual(4, Box::new(TestNet), body_sync);
        let (r_coop, c_coop) = run_virtual_coop(4, Box::new(TestNet), |comm| async move {
            let mut x = vec![comm.rank() as f64 + 1.0; 3];
            comm.allreduce_async(&mut x, crate::reduce::Op::Sum).await;
            comm.v_sync_async().await;
            x
        });
        assert_eq!(r_thread, r_coop);
        assert_eq!(c_thread, c_coop, "virtual clocks must be byte-identical");
    }

    /// Tentpole parity pin: a run driven by the trivial [`FifoController`]
    /// must be byte-identical to the uncontrolled default — same results
    /// and same virtual clocks (clocks are schedule-order-sensitive, so
    /// equality here means the interleaving itself was identical).
    #[test]
    fn fifo_controller_is_byte_identical_to_default() {
        async fn body(comm: Comm) -> Vec<f64> {
            let mut x = vec![comm.rank() as f64 + 1.0; 3];
            comm.allreduce_async(&mut x, crate::reduce::Op::Sum).await;
            comm.v_sync_async().await;
            x
        }
        let (r_plain, c_plain) = run_virtual_coop(4, Box::new(TestNet), body);
        let logs: Arc<Mutex<Vec<RunLog>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_logs = Arc::clone(&logs);
        let guard = install_explore(ScopedExplore {
            controller: Arc::new(FifoController),
            settings: Settings::default(),
            sink: Arc::new(move |log| sink_logs.lock().push(log)),
        });
        let (r_ctl, c_ctl) = run_virtual_coop(4, Box::new(TestNet), body);
        drop(guard);
        assert_eq!(r_plain, r_ctl);
        assert_eq!(
            c_plain, c_ctl,
            "FIFO-controlled clocks must be byte-identical"
        );
        let logs = logs.lock();
        assert_eq!(
            logs.len(),
            1,
            "the controlled run hands its log to the sink"
        );
        assert!(logs[0].deadlock.is_none());
    }

    /// A controller's wildcard pick really selects the matched message:
    /// picking the *newest* candidate must reverse the arrival order the
    /// default (oldest-first) discipline would have produced.
    #[test]
    fn controller_wildcard_pick_selects_the_match() {
        struct NewestWins;
        impl ScheduleController for NewestWins {
            fn pick_ready(&self, _ready: &[usize]) -> usize {
                0
            }
            fn pick_wildcard(&self, _rank: usize, candidates: &[WildcardCandidate]) -> usize {
                candidates.len() - 1
            }
        }
        let run = |ctl: Arc<dyn ScheduleController>| {
            let checked = run_controlled_coop(3, Settings::default(), ctl, |comm| async move {
                match comm.rank() {
                    0 => {
                        // Pin both senders' arrivals before the wildcard
                        // receives so two candidate lanes are queued.
                        let mut sync = [0u8; 1];
                        comm.recv_async(&mut sync, 1, 99).await;
                        comm.recv_async(&mut sync, 2, 99).await;
                        let (_, a, _) = comm.recv_any_async::<u64>(None, Some(1)).await;
                        let (_, b, _) = comm.recv_any_async::<u64>(None, Some(1)).await;
                        vec![a, b]
                    }
                    me => {
                        comm.send(&[me as u64], 0, 1);
                        comm.send(&[1u8], 0, 99);
                        Vec::new()
                    }
                }
            });
            checked.results.expect("clean program")[0].clone()
        };
        let oldest = run(Arc::new(FifoController));
        let newest = run(Arc::new(NewestWins));
        assert_eq!(oldest, vec![1, 2], "default matches in arrival order");
        assert_eq!(newest, vec![2, 1], "controller reversed the match order");
    }

    #[test]
    fn checked_coop_names_a_recv_cycle() {
        // Satellite: the deadlock detector still names the recv cycle
        // when the cycling ranks are cooperative tasks, not threads.
        let checked = run_checked_coop(2, Settings::default(), |comm| async move {
            let mut b = [0u8; 1];
            let from = comm.rank() ^ 1;
            comm.recv_async(&mut b, from, 1).await;
        });
        assert!(checked.results.is_none());
        let deadlock = checked.log.deadlock.expect("stall must be diagnosed");
        let cycle = deadlock.cycle.as_ref().expect("a 0 -> 1 -> 0 recv cycle");
        assert_eq!(cycle.len(), 2, "cycle: {cycle:?}");
        assert!(checked.panics.is_empty(), "poison unwinds are not panics");
    }

    #[test]
    fn coop_barrier_at_4096_ranks() {
        // High-rank smoke: ~4096 * 12 messages, one thread, no spawns.
        run_coop(4096, |comm| async move {
            comm.barrier_async().await;
        });
    }

    #[test]
    #[ignore = "release-scale: 65536 ranks, ~1M messages; run with --ignored --release"]
    fn coop_barrier_at_65536_ranks() {
        run_coop(65536, |comm| async move {
            comm.barrier_async().await;
        });
    }
}
