//! The SPMD runtime: one OS thread per rank, in-process message delivery.
//!
//! `mp::run(n, f)` is the moral equivalent of `mpirun -np n`: it spawns `n`
//! rank threads, hands each a world [`Comm`](crate::comm::Comm), runs `f`
//! to completion on every rank and returns the per-rank results in rank
//! order. Message delivery is eager (a send copies the payload into the
//! destination mailbox and completes immediately), mirroring MPI's eager
//! protocol for the message sizes the benchmarks use; this also makes
//! `sendrecv`-style exchange patterns trivially deadlock-free.
//!
//! Rank threads are spawned through [`std::thread::Builder`] with a
//! bounded per-rank stack (`MP_RANK_STACK_BYTES`, default 2 MiB), and a
//! failed spawn tears the world down with a clear "cannot spawn rank r of
//! n" panic instead of aborting the process. For rank counts beyond what
//! one host can thread (virtual sweeps at 16k–100k ranks), use the
//! cooperative scheduler in [`crate::coop`] instead.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use simnet::Transfer;

use simnet::Time;

use crate::check::{self, Checked, Inspector, RunLog, Settings};
use crate::comm::Comm;
use crate::mailbox::Mailbox;
use crate::msg::Message;
use crate::virt::VirtualNet;

/// Default per-rank thread stack: far below the 8 MiB thread default —
/// rank bodies here are benchmark kernels, not deep recursions — so a
/// native world of a few thousand ranks does not exhaust address space.
const DEFAULT_RANK_STACK_BYTES: usize = 2 * 1024 * 1024;

#[cfg(test)]
thread_local! {
    /// Test-only override of the rank stack size, thread-local so a spawn
    /// failure can be provoked without an env var racing parallel tests
    /// (spawning happens on the calling thread, which owns this cell).
    static STACK_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Per-rank stack size for spawned rank threads, overridable via the
/// `MP_RANK_STACK_BYTES` environment variable (read per run, not cached,
/// for the same reason as `MP_DEADLOCK_TIMEOUT_SECS`). Unparsable values
/// fall back to the default.
fn rank_stack_bytes() -> usize {
    #[cfg(test)]
    if let Some(s) = STACK_OVERRIDE.with(std::cell::Cell::get) {
        return s;
    }
    std::env::var("MP_RANK_STACK_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_RANK_STACK_BYTES)
}

/// Extracts the human-readable message from a caught panic payload.
/// The one helper behind every join path (native, traced, checked,
/// virtual, cooperative), so no path drops the payload on the floor.
pub(crate) fn panic_message(e: &(dyn Any + Send)) -> &str {
    e.downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| e.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic>")
}

/// Start gate for rank threads: spawned threads park here until every
/// sibling spawned successfully. If any spawn fails, the gate aborts and
/// the already-spawned threads return without running the rank body —
/// otherwise rank 0 could block forever in a collective waiting for a
/// rank that never existed, turning a spawn error into a hang.
struct StartGate {
    state: Mutex<Option<bool>>,
    cv: Condvar,
}

impl StartGate {
    fn new() -> StartGate {
        StartGate {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn open(&self) {
        *self.state.lock() = Some(true);
        self.cv.notify_all();
    }

    fn abort(&self) {
        *self.state.lock() = Some(false);
        self.cv.notify_all();
    }

    /// Parks until the gate resolves; true means "run the rank body".
    fn wait(&self) -> bool {
        let mut st = self.state.lock();
        loop {
            if let Some(go) = *st {
                return go;
            }
            self.cv.wait(&mut st);
        }
    }
}

/// Panics with the uniform spawn-failure diagnostic (satellite bugfix:
/// previously an unchecked `scope.spawn` aborted the whole process).
fn spawn_failure(rank: usize, n: usize, stack: usize, err: &std::io::Error) -> ! {
    panic!(
        "mp: cannot spawn rank {rank} of {n}: {err} \
         (per-rank stack {stack} bytes; tune MP_RANK_STACK_BYTES)"
    );
}

/// Shared state of a running SPMD world.
pub(crate) struct World {
    pub n: usize,
    pub mailboxes: Vec<Mailbox>,
    /// World group (identity mapping), shared by every rank's world
    /// [`Comm`]: built once here instead of per rank, which at 65536
    /// ranks is the difference between one 512 KiB table and an O(n²)
    /// allocation storm.
    pub world_group: Arc<Vec<usize>>,
    /// Global rank -> local rank inverse of `world_group`.
    pub world_inverse: Arc<HashMap<usize, usize>>,
    /// When tracing, every point-to-point payload is recorded here as a
    /// (global src, global dst, bytes) transfer.
    pub trace: Option<Mutex<Vec<Transfer>>>,
    /// Collective object rendezvous (used by RMA window creation):
    /// key -> (shared object, fetches remaining before cleanup).
    #[allow(clippy::type_complexity)]
    pub rendezvous: Mutex<HashMap<u64, (Arc<dyn Any + Send + Sync>, usize)>>,
    pub rendezvous_cv: Condvar,
    /// Virtual-execution pricing model (None for native runs).
    pub virtual_net: Option<Box<dyn VirtualNet>>,
    /// Per-rank virtual clocks (empty for native runs).
    pub virtual_clocks: Vec<Mutex<Time>>,
    /// Instrumentation registry of a checked run (None otherwise).
    pub inspector: Option<Arc<Inspector>>,
    /// Schedule controller of a controlled cooperative run (None
    /// otherwise): consulted by the executor at ready-set picks and by
    /// mailboxes at wildcard matches. Thread-based engines ignore it —
    /// real parallelism has no enumerable schedule to control.
    pub controller: Option<Arc<dyn crate::coop::ScheduleController>>,
    /// Multi-process session handle: present when this world is one epoch
    /// of a cross-process world, consulted by [`World::deliver`] to route
    /// messages for ranks hosted by other processes over the transport.
    pub remote: Option<crate::transport::RemoteWorld>,
}

impl World {
    pub(crate) fn new(n: usize, traced: bool, inspector: Option<Arc<Inspector>>) -> World {
        World::new_controlled(n, traced, inspector, None)
    }

    pub(crate) fn new_controlled(
        n: usize,
        traced: bool,
        inspector: Option<Arc<Inspector>>,
        controller: Option<Arc<dyn crate::coop::ScheduleController>>,
    ) -> World {
        let world_group: Arc<Vec<usize>> = Arc::new((0..n).collect());
        let world_inverse: Arc<HashMap<usize, usize>> =
            Arc::new(world_group.iter().map(|&g| (g, g)).collect());
        World {
            n,
            mailboxes: (0..n)
                .map(|rank| {
                    Mailbox::with_instrumentation(rank, inspector.clone(), controller.clone())
                })
                .collect(),
            world_group,
            world_inverse,
            trace: traced.then(|| Mutex::new(Vec::new())),
            rendezvous: Mutex::new(HashMap::new()),
            rendezvous_cv: Condvar::new(),
            virtual_net: None,
            virtual_clocks: Vec::new(),
            inspector,
            controller,
            remote: None,
        }
    }

    /// Delivers `msg` to global rank `dst`, recording it if tracing.
    /// Under a multi-process session, a message for a rank hosted by
    /// another process is framed and sent over the transport instead of
    /// pushed into a local mailbox — the one point where residency is
    /// decided, so everything above (collectives, rendezvous fallback,
    /// instrumentation) is transport-agnostic by construction.
    pub fn deliver(&self, dst: usize, msg: Message) {
        if let Some(remote) = &self.remote {
            if !remote.resident(dst) {
                remote.send_data(dst, &msg);
                return;
            }
        }
        if let Some(trace) = &self.trace {
            trace.lock().push(Transfer {
                src: msg.src,
                dst,
                bytes: msg.data.len() as u64,
            });
        }
        self.mailboxes[dst].push(msg);
    }

    /// Rendezvous attempt for a large typed send: if rank `dst` has a
    /// matching posted receive with a right-sized buffer, encode `words`
    /// directly into it and complete the transfer (one copy end to end).
    /// Returns false — and performs nothing — when no such receive is
    /// posted; the caller falls back to the eager path.
    pub fn rendezvous_words<T: crate::datatype::Word>(
        &self,
        src: usize,
        dst: usize,
        full_tag: u64,
        words: &[T],
    ) -> bool {
        if let Some(remote) = &self.remote {
            if !remote.resident(dst) {
                // No visibility into a remote mailbox's posted receives;
                // the caller falls back to the eager (framed) path.
                return false;
            }
        }
        if !self.mailboxes[dst].rendezvous_send(src, full_tag, words, None) {
            return false;
        }
        if let Some(insp) = &self.inspector {
            insp.record(
                src,
                crate::check::Event::Send {
                    dst,
                    comm: (full_tag >> 32) as u32,
                    tag: (full_tag & 0xFFFF_FFFF) as u32,
                    bytes: words.len() * T::SIZE,
                },
            );
        }
        if let Some(trace) = &self.trace {
            trace.lock().push(Transfer {
                src,
                dst,
                bytes: (words.len() * T::SIZE) as u64,
            });
        }
        true
    }
}

/// Runs `f` as an SPMD program over `n` ranks and returns the per-rank
/// results in rank order.
///
/// Panics if any rank panics (the panic is propagated with its message).
///
/// Under a multi-process session
/// ([`transport::init_from_env`](crate::transport::init_from_env) found a
/// backend), `n` must equal the launcher-fixed world size, the ranks
/// resident in this process run here while the rest run in their own
/// processes, and only the *resident* ranks' results come back (in
/// ascending rank order) — every process of the world must make the same
/// `run` calls in the same order.
///
/// # Examples
///
/// ```
/// let sums = mp::run(4, |comm| {
///     let mut x = [comm.rank() as u64];
///     comm.allreduce(&mut x, mp::Op::Sum);
///     x[0]
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
pub fn run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    // A multi-process session reroutes delivery through its transport;
    // it takes precedence over scoped checking (the session runs its own
    // cross-process detector).
    if let Some(sess) = crate::transport::session() {
        return crate::transport::run_multiproc(&sess, n, f);
    }
    // An ambient check configuration (installed on *this* thread via
    // `check::install_scoped`) reroutes the run through the instrumented
    // path: deadlocks are diagnosed, the run log goes to the sink, and
    // rank panics still propagate like the plain path's.
    if let Some(scoped) = check::scoped() {
        let Checked {
            results,
            panics,
            log,
        } = run_checked_inner(n, scoped.settings.clone(), &f);
        let deadlock = log.deadlock.clone();
        (scoped.sink)(log);
        if let Some(d) = deadlock {
            panic!("{}{d}", check::POISON_MARK);
        }
        if let Some((rank, msg)) = panics.first() {
            panic!("rank {rank} panicked: {msg}");
        }
        return results.expect("no deadlock, no panics, so every rank completed");
    }
    run_inner(n, false, f).0
}

/// Like [`run`], but records every point-to-point message. Returns the
/// per-rank results and the trace as a list of (src, dst, bytes) transfers
/// in delivery order. Used to cross-validate the real collective
/// implementations against their schedule generators.
pub fn run_traced<R, F>(n: usize, f: F) -> (Vec<R>, Vec<Transfer>)
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    crate::transport::assert_no_session("run_traced");
    let (results, trace) = run_inner(n, true, f);
    (results, trace.expect("tracing was enabled"))
}

/// Virtual-execution entry point (see [`crate::virt::run_virtual`]).
///
/// The rank threads are serialised through a [`crate::coop::Baton`]: one
/// thread runs at a time, handing over at every blocking receive, on the
/// same FIFO schedule the cooperative executor uses. Message order into
/// the simulated resource timelines is therefore deterministic, and the
/// returned clocks are byte-identical run to run — and identical to
/// [`crate::run_virtual_coop`] on the same program.
pub(crate) fn run_with_virtual<R, F>(
    n: usize,
    net: Box<dyn VirtualNet>,
    f: F,
) -> (Vec<R>, Vec<Time>)
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    crate::transport::assert_no_session("run_virtual");
    let mut world = World::new(n, false, None);
    world.virtual_net = Some(net);
    world.virtual_clocks = (0..n).map(|_| Mutex::new(Time::ZERO)).collect();
    let world = Arc::new(world);
    let f = &f;
    let diag_world = Arc::clone(&world);
    let baton = crate::coop::Baton::new(
        n,
        Box::new(move |blocked: &[usize]| crate::coop::stall_message(&diag_world, blocked)),
    );
    let gate = StartGate::new();
    let stack = rank_stack_bytes();
    let mut first_panic: Option<(usize, String)> = None;
    let mut results: Vec<Option<R>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let world = Arc::clone(&world);
            let baton = Arc::clone(&baton);
            let gate = &gate;
            let spawned = std::thread::Builder::new()
                .name(format!("mp-rank-{rank}"))
                .stack_size(stack)
                .spawn_scoped(scope, move || {
                    if !gate.wait() {
                        return None;
                    }
                    // Baton-serialised virtual worlds run one rank at a
                    // time on purpose; a worker pool would oversubscribe
                    // the host for no modelled benefit.
                    let _pool = smp::AmbientGuard::serial();
                    let _installed = crate::coop::BatonGuard::install(Arc::clone(&baton), rank);
                    baton.wait_initial(rank);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        f(&Comm::world(world, rank))
                    }));
                    match &out {
                        Ok(_) => baton.finish(rank),
                        Err(_) => baton.abort(rank),
                    }
                    Some(out)
                });
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    gate.abort();
                    for h in handles {
                        let _ = h.join();
                    }
                    spawn_failure(rank, n, stack, &e);
                }
            }
        }
        gate.open();
        baton.open();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Some(Ok(r))) => results[rank] = Some(r),
                Ok(Some(Err(e))) => note_real_panic(rank, &*e, &mut first_panic),
                Ok(None) => unreachable!("the gate opened, so every spawn succeeded"),
                // A teardown unwind escaped before the catch (wait_initial).
                Err(e) => note_real_panic(rank, &*e, &mut first_panic),
            }
        }
        results
    });
    if let Some((rank, msg)) = first_panic {
        panic!("rank {rank} panicked: {msg}");
    }
    if let Some(stall) = baton.take_stall() {
        panic!("{stall}");
    }
    drop(baton);
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank threads joined");
    let clocks = world
        .virtual_clocks
        .into_iter()
        .map(Mutex::into_inner)
        .collect();
    let results = results
        .drain(..)
        .map(|r| r.expect("no panic and no stall, so every rank completed"))
        .collect();
    (results, clocks)
}

/// Records the first *real* rank panic, skipping baton teardown unwinds
/// (whose cause — a stall or a peer's panic — is reported separately).
fn note_real_panic(rank: usize, e: &(dyn Any + Send), first: &mut Option<(usize, String)>) {
    let msg = panic_message(e);
    if msg.starts_with(crate::coop::TEARDOWN_MARK) {
        return;
    }
    if first.is_none() {
        *first = Some((rank, msg.to_string()));
    }
}

fn run_inner<R, F>(n: usize, traced: bool, f: F) -> (Vec<R>, Option<Vec<Transfer>>)
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    let world = Arc::new(World::new(n, traced, None));
    let f = &f;
    let gate = StartGate::new();
    let stack = rank_stack_bytes();
    let results: Vec<R> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let world = Arc::clone(&world);
            let gate = &gate;
            let spawned = std::thread::Builder::new()
                .name(format!("mp-rank-{rank}"))
                .stack_size(stack)
                .spawn_scoped(scope, move || {
                    if !gate.wait() {
                        return None;
                    }
                    // Hybrid SMP: each native rank's kernels may fan out
                    // over an even share of the host's cores.
                    let _pool = smp::AmbientGuard::install(smp::pool::rank_threads(n));
                    let comm = Comm::world(world, rank);
                    Some(f(&comm))
                });
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    gate.abort();
                    for h in handles {
                        let _ = h.join();
                    }
                    spawn_failure(rank, n, stack, &e);
                }
            }
        }
        gate.open();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(Some(r)) => r,
                Ok(None) => unreachable!("the gate opened, so every spawn succeeded"),
                Err(e) => panic!("rank {rank} panicked: {}", panic_message(&*e)),
            })
            .collect()
    });
    let trace = Arc::try_unwrap(world)
        .ok()
        .expect("all rank threads joined")
        .trace
        .map(Mutex::into_inner);
    (results, trace)
}

/// Spawns one rank thread per entry of `ranks` against `world` (whose
/// size may exceed `ranks.len()` — the multi-process runtime hosts only
/// the resident subset of a larger world), joins them, and returns their
/// results in `ranks` order. `world_size` is the *full* world size,
/// which sizes each rank's SMP worker share exactly as a single-process
/// run of that world would — a parity requirement, not a nicety: the
/// `threads` field of emitted records must not depend on how ranks were
/// packed into processes.
pub(crate) fn spawn_rank_threads<R, F>(
    world: &Arc<World>,
    ranks: &[usize],
    world_size: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &Comm) -> R + Send + Sync,
{
    let f = &f;
    let gate = StartGate::new();
    let stack = rank_stack_bytes();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks.len());
        for &rank in ranks {
            let world = Arc::clone(world);
            let gate = &gate;
            let spawned = std::thread::Builder::new()
                .name(format!("mp-rank-{rank}"))
                .stack_size(stack)
                .spawn_scoped(scope, move || {
                    if !gate.wait() {
                        return None;
                    }
                    let _pool = smp::AmbientGuard::install(smp::pool::rank_threads(world_size));
                    let comm = Comm::world(world, rank);
                    Some(f(rank, &comm))
                });
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    gate.abort();
                    for h in handles {
                        let _ = h.join();
                    }
                    spawn_failure(rank, world_size, stack, &e);
                }
            }
        }
        gate.open();
        handles
            .into_iter()
            .zip(ranks)
            .map(|(h, &rank)| match h.join() {
                Ok(Some(r)) => r,
                Ok(None) => unreachable!("the gate opened, so every spawn succeeded"),
                Err(e) => panic!("rank {rank} panicked: {}", panic_message(&*e)),
            })
            .collect()
    })
}

/// The instrumented run path behind [`crate::check::run_checked`] (and,
/// via a scoped install, [`run`]): an [`Inspector`] is attached to the
/// world, every rank runs under `catch_unwind`, and a detector thread
/// polls wait states — when activity is stable across several polls with
/// every unfinished rank parked, it diagnoses the deadlock and poisons
/// the run, unwinding the blocked ranks with the diagnosis.
pub(crate) fn run_checked_inner<R, F>(n: usize, settings: Settings, f: &F) -> Checked<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    use std::sync::atomic::{AtomicBool, Ordering};

    assert!(n > 0, "an SPMD world needs at least one rank");
    crate::transport::assert_no_session("run_checked");
    let seed = settings.seed;
    let inspector = Arc::new(Inspector::new(n, settings));
    let world = Arc::new(World::new(n, false, Some(Arc::clone(&inspector))));
    let done = AtomicBool::new(false);
    let gate = StartGate::new();
    let stack = rank_stack_bytes();
    let outcomes: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
        let det_world = Arc::clone(&world);
        let det_insp = Arc::clone(&inspector);
        let det_done = &done;
        std::thread::Builder::new()
            .name("mp-check-detector".to_string())
            .spawn_scoped(scope, move || {
                // Require several consecutive polls with no wait-state
                // transitions and every unfinished rank parked before
                // diagnosing: a notified-but-unscheduled thread looks blocked
                // for one poll, never for three.
                let mut last_activity = det_insp.activity();
                let mut stable = 0u32;
                while !det_done.load(Ordering::Acquire) {
                    det_insp.poll_sleep();
                    if det_done.load(Ordering::Acquire) {
                        break;
                    }
                    let activity = det_insp.activity();
                    if activity == last_activity && det_insp.all_unfinished_waiting() {
                        stable += 1;
                    } else {
                        stable = 0;
                    }
                    last_activity = activity;
                    if stable >= 3 {
                        match crate::check::diagnose(&det_world, &det_insp) {
                            Some(diagnosis) => {
                                det_insp.set_poison(diagnosis);
                                break;
                            }
                            // A wake was in flight after all; start over.
                            None => stable = 0,
                        }
                    }
                }
            })
            .unwrap_or_else(|e| panic!("mp: cannot spawn the deadlock detector: {e}"));
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let world = Arc::clone(&world);
            let insp = Arc::clone(&inspector);
            let gate = &gate;
            let spawned = std::thread::Builder::new()
                .name(format!("mp-rank-{rank}"))
                .stack_size(stack)
                .spawn_scoped(scope, move || {
                    if !gate.wait() {
                        return None;
                    }
                    let _pool = smp::AmbientGuard::install(smp::pool::rank_threads(n));
                    let comm = Comm::world(world, rank);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm)));
                    insp.finish(rank);
                    Some(out)
                });
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    gate.abort();
                    for h in handles {
                        let _ = h.join();
                    }
                    // Release the detector before unwinding, or the scope
                    // join on it would hang the panic forever.
                    done.store(true, Ordering::Release);
                    spawn_failure(rank, n, stack, &e);
                }
            }
        }
        gate.open();
        let outcomes: Vec<_> = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("rank bodies are caught, joins cannot fail")
                    .expect("the gate opened, so every spawn succeeded")
            })
            .collect();
        done.store(true, Ordering::Release);
        outcomes
    });
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank threads joined");
    let mut leftover = Vec::new();
    for mb in &world.mailboxes {
        leftover.extend(mb.inventory());
    }
    let (events, dropped) = inspector.drain_events();
    let deadlock = inspector.poisoned();
    let mut results = Vec::with_capacity(n);
    let mut panics = Vec::new();
    let mut complete = true;
    for (rank, out) in outcomes.into_iter().enumerate() {
        match out {
            Ok(r) => results.push(r),
            Err(e) => {
                complete = false;
                let msg = panic_message(&*e);
                // Poison unwinds are the detector's doing, not the
                // program's; the deadlock diagnosis already carries them.
                if !msg.starts_with(crate::check::POISON_MARK) {
                    panics.push((rank, msg.to_string()));
                }
            }
        }
    }
    Checked {
        results: complete.then_some(results),
        panics,
        log: RunLog {
            n,
            seed,
            events,
            dropped,
            leftover,
            deadlock,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |comm| {
            assert_eq!(comm.size(), 1);
            assert_eq!(comm.rank(), 0);
            "ok"
        });
        assert_eq!(out, vec!["ok"]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: boom")]
    fn rank_panic_propagates() {
        run(4, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn traced_run_records_messages() {
        let (_, trace) = run_traced(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1.0f64, 2.0], 1, 7);
            } else {
                let mut buf = [0.0f64; 2];
                comm.recv(&mut buf, 0, 7);
            }
        });
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace[0],
            Transfer {
                src: 0,
                dst: 1,
                bytes: 16
            }
        );
    }

    /// Satellite regression: a failed rank spawn must fail cleanly with
    /// the rank named, not abort the process (old `scope.spawn`) or hang
    /// already-spawned siblings (they park behind the start gate). An
    /// absurd stack request makes the *first* spawn fail deterministically.
    #[test]
    #[should_panic(expected = "mp: cannot spawn rank 0 of 4")]
    fn spawn_failure_names_the_rank() {
        STACK_OVERRIDE.with(|c| c.set(Some(usize::MAX)));
        let restore = scopeguard();
        let _ = &restore;
        run(4, |comm| comm.rank());
    }

    /// Clears the stack override even when the test unwinds.
    fn scopeguard() -> impl Drop {
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                STACK_OVERRIDE.with(|c| c.set(None));
            }
        }
        Restore
    }

    /// Satellite regression: virtual-mode rank panics must carry the
    /// payload (the old join loop said only "rank 1 panicked").
    #[test]
    #[should_panic(expected = "rank 1 panicked: virtual boom")]
    fn virtual_rank_panic_names_the_payload() {
        struct FreeNet;
        impl VirtualNet for FreeNet {
            fn p2p(&self, _s: usize, _d: usize, _b: u64, ready: Time) -> simnet::schedule::P2pCost {
                simnet::schedule::P2pCost {
                    sender_done: ready,
                    arrival: ready,
                }
            }
            fn compute(&self, _f: f64, _e: f64) -> Time {
                Time::ZERO
            }
            fn stream(&self, _b: f64) -> Time {
                Time::ZERO
            }
        }
        run_with_virtual(2, Box::new(FreeNet), |comm| {
            if comm.rank() == 1 {
                panic!("virtual boom");
            }
        });
    }

    /// The baton engine detects a virtual-mode deadlock instantly (no
    /// 20 s timeout) and names the blocked ranks.
    #[test]
    #[should_panic(expected = "mp: deadlock: 2 rank(s) blocked")]
    fn virtual_deadlock_is_detected_instantly() {
        struct FreeNet;
        impl VirtualNet for FreeNet {
            fn p2p(&self, _s: usize, _d: usize, _b: u64, ready: Time) -> simnet::schedule::P2pCost {
                simnet::schedule::P2pCost {
                    sender_done: ready,
                    arrival: ready,
                }
            }
            fn compute(&self, _f: f64, _e: f64) -> Time {
                Time::ZERO
            }
            fn stream(&self, _b: f64) -> Time {
                Time::ZERO
            }
        }
        run_with_virtual(2, Box::new(FreeNet), |comm| {
            let mut b = [0u8; 1];
            comm.recv(&mut b, comm.rank() ^ 1, 1);
        });
    }
}
