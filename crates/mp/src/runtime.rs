//! The SPMD runtime: one OS thread per rank, in-process message delivery.
//!
//! `mp::run(n, f)` is the moral equivalent of `mpirun -np n`: it spawns `n`
//! rank threads, hands each a world [`Comm`](crate::comm::Comm), runs `f`
//! to completion on every rank and returns the per-rank results in rank
//! order. Message delivery is eager (a send copies the payload into the
//! destination mailbox and completes immediately), mirroring MPI's eager
//! protocol for the message sizes the benchmarks use; this also makes
//! `sendrecv`-style exchange patterns trivially deadlock-free.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use simnet::Transfer;

use simnet::Time;

use crate::check::{self, Checked, Inspector, RunLog, Settings};
use crate::comm::Comm;
use crate::mailbox::Mailbox;
use crate::msg::Message;
use crate::virt::VirtualNet;

/// Shared state of a running SPMD world.
pub(crate) struct World {
    pub n: usize,
    pub mailboxes: Vec<Mailbox>,
    /// When tracing, every point-to-point payload is recorded here as a
    /// (global src, global dst, bytes) transfer.
    pub trace: Option<Mutex<Vec<Transfer>>>,
    /// Collective object rendezvous (used by RMA window creation):
    /// key -> (shared object, fetches remaining before cleanup).
    #[allow(clippy::type_complexity)]
    pub rendezvous: Mutex<HashMap<u64, (Arc<dyn Any + Send + Sync>, usize)>>,
    pub rendezvous_cv: Condvar,
    /// Virtual-execution pricing model (None for native runs).
    pub virtual_net: Option<Box<dyn VirtualNet>>,
    /// Per-rank virtual clocks (empty for native runs).
    pub virtual_clocks: Vec<Mutex<Time>>,
    /// Instrumentation registry of a checked run (None otherwise).
    pub inspector: Option<Arc<Inspector>>,
}

impl World {
    fn new(n: usize, traced: bool, inspector: Option<Arc<Inspector>>) -> World {
        World {
            n,
            mailboxes: (0..n)
                .map(|rank| Mailbox::with_inspector(rank, inspector.clone()))
                .collect(),
            trace: traced.then(|| Mutex::new(Vec::new())),
            rendezvous: Mutex::new(HashMap::new()),
            rendezvous_cv: Condvar::new(),
            virtual_net: None,
            virtual_clocks: Vec::new(),
            inspector,
        }
    }

    /// Delivers `msg` to global rank `dst`, recording it if tracing.
    pub fn deliver(&self, dst: usize, msg: Message) {
        if let Some(trace) = &self.trace {
            trace.lock().push(Transfer {
                src: msg.src,
                dst,
                bytes: msg.data.len() as u64,
            });
        }
        self.mailboxes[dst].push(msg);
    }

    /// Rendezvous attempt for a large typed send: if rank `dst` has a
    /// matching posted receive with a right-sized buffer, encode `words`
    /// directly into it and complete the transfer (one copy end to end).
    /// Returns false — and performs nothing — when no such receive is
    /// posted; the caller falls back to the eager path.
    pub fn rendezvous_words<T: crate::datatype::Word>(
        &self,
        src: usize,
        dst: usize,
        full_tag: u64,
        words: &[T],
    ) -> bool {
        if !self.mailboxes[dst].rendezvous_send(src, full_tag, words, None) {
            return false;
        }
        if let Some(insp) = &self.inspector {
            insp.record(
                src,
                crate::check::Event::Send {
                    dst,
                    comm: (full_tag >> 32) as u32,
                    tag: (full_tag & 0xFFFF_FFFF) as u32,
                    bytes: words.len() * T::SIZE,
                },
            );
        }
        if let Some(trace) = &self.trace {
            trace.lock().push(Transfer {
                src,
                dst,
                bytes: (words.len() * T::SIZE) as u64,
            });
        }
        true
    }
}

/// Runs `f` as an SPMD program over `n` ranks and returns the per-rank
/// results in rank order.
///
/// Panics if any rank panics (the panic is propagated with its message).
///
/// # Examples
///
/// ```
/// let sums = mp::run(4, |comm| {
///     let mut x = [comm.rank() as u64];
///     comm.allreduce(&mut x, mp::Op::Sum);
///     x[0]
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
pub fn run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    // An ambient check configuration (installed on *this* thread via
    // `check::install_scoped`) reroutes the run through the instrumented
    // path: deadlocks are diagnosed, the run log goes to the sink, and
    // rank panics still propagate like the plain path's.
    if let Some(scoped) = check::scoped() {
        let Checked {
            results,
            panics,
            log,
        } = run_checked_inner(n, scoped.settings.clone(), &f);
        let deadlock = log.deadlock.clone();
        (scoped.sink)(log);
        if let Some(d) = deadlock {
            panic!("{}{d}", check::POISON_MARK);
        }
        if let Some((rank, msg)) = panics.first() {
            panic!("rank {rank} panicked: {msg}");
        }
        return results.expect("no deadlock, no panics, so every rank completed");
    }
    run_inner(n, false, f).0
}

/// Like [`run`], but records every point-to-point message. Returns the
/// per-rank results and the trace as a list of (src, dst, bytes) transfers
/// in delivery order. Used to cross-validate the real collective
/// implementations against their schedule generators.
pub fn run_traced<R, F>(n: usize, f: F) -> (Vec<R>, Vec<Transfer>)
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    let (results, trace) = run_inner(n, true, f);
    (results, trace.expect("tracing was enabled"))
}

/// Virtual-execution entry point (see [`crate::virt::run_virtual`]).
pub(crate) fn run_with_virtual<R, F>(
    n: usize,
    net: Box<dyn VirtualNet>,
    f: F,
) -> (Vec<R>, Vec<Time>)
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    let mut world = World::new(n, false, None);
    world.virtual_net = Some(net);
    world.virtual_clocks = (0..n).map(|_| Mutex::new(Time::ZERO)).collect();
    let world = Arc::new(world);
    let f = &f;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let world = Arc::clone(&world);
                scope.spawn(move || f(&Comm::world(world, rank)))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| h.join().unwrap_or_else(|_| panic!("rank {rank} panicked")))
            .collect()
    });
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank threads joined");
    let clocks = world
        .virtual_clocks
        .into_iter()
        .map(Mutex::into_inner)
        .collect();
    (results, clocks)
}

fn run_inner<R, F>(n: usize, traced: bool, f: F) -> (Vec<R>, Option<Vec<Transfer>>)
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(n > 0, "an SPMD world needs at least one rank");
    let world = Arc::new(World::new(n, traced, None));
    let f = &f;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let world = Arc::clone(&world);
                scope.spawn(move || {
                    let comm = Comm::world(world, rank);
                    f(&comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(r) => r,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("rank {rank} panicked: {msg}");
                }
            })
            .collect()
    });
    let trace = Arc::try_unwrap(world)
        .ok()
        .expect("all rank threads joined")
        .trace
        .map(Mutex::into_inner);
    (results, trace)
}

/// The instrumented run path behind [`crate::check::run_checked`] (and,
/// via a scoped install, [`run`]): an [`Inspector`] is attached to the
/// world, every rank runs under `catch_unwind`, and a detector thread
/// polls wait states — when activity is stable across several polls with
/// every unfinished rank parked, it diagnoses the deadlock and poisons
/// the run, unwinding the blocked ranks with the diagnosis.
pub(crate) fn run_checked_inner<R, F>(n: usize, settings: Settings, f: &F) -> Checked<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    use std::sync::atomic::{AtomicBool, Ordering};

    assert!(n > 0, "an SPMD world needs at least one rank");
    let seed = settings.seed;
    let inspector = Arc::new(Inspector::new(n, settings));
    let world = Arc::new(World::new(n, false, Some(Arc::clone(&inspector))));
    let done = AtomicBool::new(false);
    let outcomes: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
        let det_world = Arc::clone(&world);
        let det_insp = Arc::clone(&inspector);
        let det_done = &done;
        scope.spawn(move || {
            // Require several consecutive polls with no wait-state
            // transitions and every unfinished rank parked before
            // diagnosing: a notified-but-unscheduled thread looks blocked
            // for one poll, never for three.
            let mut last_activity = det_insp.activity();
            let mut stable = 0u32;
            while !det_done.load(Ordering::Acquire) {
                std::thread::sleep(det_insp.settings().poll);
                if det_done.load(Ordering::Acquire) {
                    break;
                }
                let activity = det_insp.activity();
                if activity == last_activity && det_insp.all_unfinished_waiting() {
                    stable += 1;
                } else {
                    stable = 0;
                }
                last_activity = activity;
                if stable >= 3 {
                    match crate::check::diagnose(&det_world, &det_insp) {
                        Some(diagnosis) => {
                            det_insp.set_poison(diagnosis);
                            break;
                        }
                        // A wake was in flight after all; start over.
                        None => stable = 0,
                    }
                }
            }
        });
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let world = Arc::clone(&world);
                let insp = Arc::clone(&inspector);
                scope.spawn(move || {
                    let comm = Comm::world(world, rank);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm)));
                    insp.finish(rank);
                    out
                })
            })
            .collect();
        let outcomes: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("rank bodies are caught, joins cannot fail"))
            .collect();
        done.store(true, Ordering::Release);
        outcomes
    });
    let world = Arc::try_unwrap(world)
        .ok()
        .expect("all rank threads joined");
    let mut leftover = Vec::new();
    for mb in &world.mailboxes {
        leftover.extend(mb.inventory());
    }
    let (events, dropped) = inspector.drain_events();
    let deadlock = inspector.poisoned();
    let mut results = Vec::with_capacity(n);
    let mut panics = Vec::new();
    let mut complete = true;
    for (rank, out) in outcomes.into_iter().enumerate() {
        match out {
            Ok(r) => results.push(r),
            Err(e) => {
                complete = false;
                let msg = e
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| e.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                // Poison unwinds are the detector's doing, not the
                // program's; the deadlock diagnosis already carries them.
                if !msg.starts_with(crate::check::POISON_MARK) {
                    panics.push((rank, msg.to_string()));
                }
            }
        }
    }
    Checked {
        results: complete.then_some(results),
        panics,
        log: RunLog {
            n,
            seed,
            events,
            dropped,
            leftover,
            deadlock,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |comm| {
            assert_eq!(comm.size(), 1);
            assert_eq!(comm.rank(), 0);
            "ok"
        });
        assert_eq!(out, vec!["ok"]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: boom")]
    fn rank_panic_propagates() {
        run(4, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn traced_run_records_messages() {
        let (_, trace) = run_traced(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1.0f64, 2.0], 1, 7);
            } else {
                let mut buf = [0.0f64; 2];
                comm.recv(&mut buf, 0, 7);
            }
        });
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace[0],
            Transfer {
                src: 0,
                dst: 1,
                bytes: 16
            }
        );
    }
}
