//! Virtual-time execution: run any `mp` program on a *simulated* fabric.
//!
//! [`run_virtual`] spawns the usual rank threads, but every message is
//! priced by a [`VirtualNet`] (supplied by the `machines` crate's
//! models): sends advance the sender's virtual clock by its overhead,
//! receives advance the receiver's clock to the message's simulated
//! arrival, and compute phases are charged explicitly via
//! [`Comm::v_compute`]. The program's real data still moves — results
//! stay bit-identical to a native run — while [`Comm::v_time`] reads the
//! timeline of the modelled machine.
//!
//! This is a third execution mode alongside native timing and
//! schedule-replay simulation, and the integration tests use it to
//! cross-validate the other two: a benchmark *executed* under virtual
//! time must land near the price of its generated schedule.
//!
//! Determinism: virtual runs are scheduled deterministically. The
//! thread-backed path serializes its rank threads behind a run-queue
//! baton, and the cooperative path ([`crate::run_virtual_coop`]) polls
//! resumable rank tasks off the same FIFO discipline, so both engines
//! replay the identical message order into the net's first-fit
//! reservation timelines (see `simnet::resource`) and produce
//! byte-identical per-rank clocks — run to run and engine to engine.

use simnet::schedule::P2pCost;
use simnet::Time;

use crate::comm::Comm;
use crate::runtime;

/// A pricing model for virtual execution. Implemented by
/// `machines::SharedClusterNet` for the paper's machine models.
pub trait VirtualNet: Send + Sync {
    /// Prices one message of `bytes` from `src` to `dst` (global ranks),
    /// ready at `ready` on the sender's clock.
    fn p2p(&self, src: usize, dst: usize, bytes: u64, ready: Time) -> P2pCost;

    /// Prices `flops` floating-point operations on one rank at `eff`
    /// fraction of peak.
    fn compute(&self, flops: f64, eff: f64) -> Time;

    /// Prices a memory-streaming phase of `bytes` on one rank.
    fn stream(&self, bytes: f64) -> Time;
}

/// Runs `f` as an SPMD program over `n` ranks on the virtual fabric
/// `net`. Returns the per-rank results and the per-rank final virtual
/// clocks.
pub fn run_virtual<R, F>(n: usize, net: Box<dyn VirtualNet>, f: F) -> (Vec<R>, Vec<Time>)
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    runtime::run_with_virtual(n, net, f)
}

impl Comm {
    /// This rank's current virtual time. Zero outside virtual execution.
    pub fn v_time(&self) -> Time {
        self.world_virtual_clock()
    }

    /// Charges a compute phase of `flops` at `eff` fraction of peak to
    /// this rank's virtual clock. No-op outside virtual execution.
    pub fn v_compute(&self, flops: f64, eff: f64) {
        if let Some(net) = self.world_virtual_net() {
            let dt = net.compute(flops, eff);
            self.advance_virtual_clock(dt);
        }
    }

    /// Charges a memory-streaming phase of `bytes` to this rank's
    /// virtual clock. No-op outside virtual execution.
    pub fn v_stream(&self, bytes: f64) {
        if let Some(net) = self.world_virtual_net() {
            let dt = net.stream(bytes);
            self.advance_virtual_clock(dt);
        }
    }

    /// Synchronises this rank's virtual clock with a barrier: all ranks
    /// leave with the maximum clock. (A convenience for benchmark
    /// timing; the barrier itself is also priced as messages.)
    pub fn v_sync(&self) -> Time {
        let mut t = [self.v_time().as_secs()];
        self.allreduce(&mut t, crate::reduce::Op::Max);
        let target = Time::from_secs(t[0]);
        self.set_virtual_clock_at_least(target);
        target
    }

    /// Awaitable [`v_sync`](Comm::v_sync), for cooperative tasks.
    pub async fn v_sync_async(&self) -> Time {
        let mut t = [self.v_time().as_secs()];
        self.allreduce_async(&mut t, crate::reduce::Op::Max).await;
        let target = Time::from_secs(t[0]);
        self.set_virtual_clock_at_least(target);
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A fixed-cost test net: latency 10 us, 1 GB/s, full overlap.
    struct TestNet;

    impl VirtualNet for TestNet {
        fn p2p(&self, _s: usize, _d: usize, bytes: u64, ready: Time) -> P2pCost {
            let dur = Time::from_us(10.0) + Time::from_secs(bytes as f64 / 1e9);
            P2pCost {
                sender_done: ready + Time::from_us(1.0),
                arrival: ready + dur,
            }
        }
        fn compute(&self, flops: f64, eff: f64) -> Time {
            Time::from_secs(flops / (1e9 * eff))
        }
        fn stream(&self, bytes: f64) -> Time {
            Time::from_secs(bytes / 1e9)
        }
    }

    #[test]
    fn ping_pong_accumulates_latency() {
        let iters = 5;
        let (_, clocks) = run_virtual(2, Box::new(TestNet), |comm| {
            let me = comm.rank();
            let buf = [0u8; 0];
            for _ in 0..iters {
                if me == 0 {
                    comm.send(&buf, 1, 1);
                    let mut r = [0u8; 0];
                    comm.recv(&mut r, 1, 1);
                } else {
                    let mut r = [0u8; 0];
                    comm.recv(&mut r, 0, 1);
                    comm.send(&buf, 0, 1);
                }
            }
        });
        // 2 messages x 10 us per iteration on the critical path.
        let expect = 2.0 * 10.0 * iters as f64;
        assert!(
            (clocks[0].as_us() - expect).abs() < 1e-6,
            "clock {} vs {expect}",
            clocks[0].as_us()
        );
    }

    #[test]
    fn results_match_native_execution() {
        // Virtual time must not change computed values.
        let native = crate::run(4, |comm| {
            let mut x = vec![comm.rank() as f64 + 1.0; 3];
            comm.allreduce(&mut x, crate::Op::Sum);
            x
        });
        let (virt, clocks) = run_virtual(4, Box::new(TestNet), |comm| {
            let mut x = vec![comm.rank() as f64 + 1.0; 3];
            comm.allreduce(&mut x, crate::Op::Sum);
            x
        });
        assert_eq!(native, virt);
        assert!(
            clocks.iter().all(|c| c.as_us() > 0.0),
            "allreduce costs time"
        );
    }

    #[test]
    fn compute_charging_and_sync() {
        let (_, clocks) = run_virtual(3, Box::new(TestNet), |comm| {
            if comm.rank() == 1 {
                comm.v_compute(5e9, 1.0); // 5 seconds
            }
            comm.v_sync();
        });
        for c in &clocks {
            assert!(c.as_secs() >= 5.0, "sync must propagate the slowest clock");
        }
    }

    #[test]
    fn outside_virtual_mode_clocks_are_zero() {
        crate::run(2, |comm| {
            assert_eq!(comm.v_time(), Time::ZERO);
            comm.v_compute(1e12, 1.0); // no-op
            assert_eq!(comm.v_time(), Time::ZERO);
        });
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let run_bytes = |bytes: usize| -> f64 {
            let (_, clocks) = run_virtual(2, Box::new(TestNet), move |comm| {
                if comm.rank() == 0 {
                    comm.send(&vec![1u8; bytes], 1, 2);
                } else {
                    let mut r = vec![0u8; bytes];
                    comm.recv(&mut r, 0, 2);
                }
            });
            clocks[1].as_us()
        };
        let t1 = run_bytes(1000);
        let t2 = run_bytes(1_000_000);
        assert!(t2 > t1 + 900.0, "1 MB adds ~1 ms: {t1} -> {t2}");
    }

    #[test]
    fn shared_net_instances_are_reusable() {
        // The Arc pattern machines uses: one net across several worlds.
        struct ArcNet(Arc<TestNet>);
        impl VirtualNet for ArcNet {
            fn p2p(&self, s: usize, d: usize, b: u64, r: Time) -> P2pCost {
                self.0.p2p(s, d, b, r)
            }
            fn compute(&self, f: f64, e: f64) -> Time {
                self.0.compute(f, e)
            }
            fn stream(&self, b: f64) -> Time {
                self.0.stream(b)
            }
        }
        let shared = Arc::new(TestNet);
        for _ in 0..3 {
            let (_, clocks) = run_virtual(2, Box::new(ArcNet(Arc::clone(&shared))), |comm| {
                comm.barrier()
            });
            assert!(clocks[0].as_us() > 0.0);
        }
    }
}
