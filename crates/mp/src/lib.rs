//! `mp` — a thread-based SPMD message-passing runtime ("mini-MPI").
//!
//! The HPCC and IMB benchmark suites are MPI programs; this crate supplies
//! the message-passing substrate they run on in this workspace. One OS
//! thread per rank, eager in-process message delivery with MPI matching
//! semantics (source + tag, non-overtaking), communicators with
//! `split`/`dup`, and the full family of collective operations in the
//! classical algorithm variants (binomial, recursive doubling/halving,
//! ring, pairwise, Bruck, Rabenseifner).
//!
//! # Quickstart
//!
//! ```
//! let totals = mp::run(4, |comm| {
//!     let mut x = [comm.rank() as u64 + 1];
//!     comm.allreduce(&mut x, mp::Op::Sum);
//!     x[0]
//! });
//! assert_eq!(totals, vec![10, 10, 10, 10]);
//! ```
//!
//! Every collective algorithm has a mirror *schedule generator* in
//! [`sched`] that emits its exact per-round communication pattern as a
//! [`simnet::Schedule`]; the fabric simulator replays those schedules
//! against the paper's machine models, and tests assert that traced real
//! executions ([`run_traced`]) move exactly the messages the generators
//! predict.

mod api;
pub mod check;
pub mod coll;
mod comm;
mod coop;
pub mod datatype;
mod mailbox;
mod msg;
mod payload;
pub mod reduce;
pub mod rma;
mod runtime;
pub mod sched;
pub mod transport;
pub mod virt;

pub use comm::{Comm, RecvHandle};
pub use coop::{
    block_on, install_explore, run_checked_coop, run_controlled_coop, run_coop, run_traced_coop,
    run_virtual_coop, ExploreGuard, FifoController, ScheduleController, ScopedExplore,
    WildcardCandidate,
};
pub use datatype::Word;
pub use msg::{Tag, MAX_USER_TAG};
pub use reduce::{Numeric, Op};
pub use rma::Window;
pub use runtime::{run, run_traced};
pub use transport::{Backend, Proc};
pub use virt::{run_virtual, VirtualNet};
