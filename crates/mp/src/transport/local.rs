//! The degenerate single-process transport.
//!
//! The *local backend* proper is not here — it is the seed delivery path
//! itself: with no session installed (or every rank resident),
//! [`World::deliver`](crate::runtime::World::deliver) pushes straight
//! into the destination mailbox, byte-identical to the pre-refactor
//! runtime. This type only exists so a session whose world happens to fit
//! in one process (`MP_NPROCS=1`) still has a [`Transport`] to hold: it
//! has no peers, so `send` is unreachable and `recv` just idles.

use std::time::Duration;

use super::wire::Frame;
use super::{Backend, Transport};

/// Transport of a single-process session: no peers, nothing to move.
pub(crate) struct LocalTransport;

impl Transport for LocalTransport {
    fn send(&self, dst_proc: usize, _frame: &Frame) {
        unreachable!("mp transport: local send to proc {dst_proc} in a 1-process world");
    }

    fn recv(&self, timeout: Duration) -> Option<Frame> {
        std::thread::sleep(timeout);
        None
    }

    fn backend(&self) -> Backend {
        Backend::Local
    }
}
