//! Shared-memory transport: processes on one host exchanging frames
//! through per-pair channel files on a memory-backed filesystem.
//!
//! The launcher points every process of a world at one session directory
//! (on `/dev/shm` when available, so "file" I/O is page-cache traffic,
//! never disk). Each *ordered* process pair gets its own append-only
//! channel file, `ch-{src}-to-{dst}.mpq`: exactly one writer and one
//! reader per file, so appends need no cross-process locking and reads
//! are a simple private offset walk. FIFO per pair — the property the
//! epoch flush barrier and the non-overtaking matching semantics rest
//! on — is inherited from append order.
//!
//! The workspace forbids `unsafe`, which rules out `mmap`-style shared
//! segments; bytes move through ordinary `read`/`write` on tmpfs files
//! instead. That costs a syscall per poll, not a copy per rank pair more
//! than any other design, and keeps the whole backend safe code.
//!
//! A reader polls its channels with a short adaptive sleep. Partial
//! frames are the decoder's problem, not ours: [`Frame::decode`] returns
//! `None` until the buffered prefix holds a complete frame, so a
//! concurrent append can never be misparsed, only deferred.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use parking_lot::Mutex;

use super::wire::Frame;
use super::{Backend, Transport};

/// Polling interval while a receive waits for bytes.
const POLL_SLEEP: Duration = Duration::from_micros(200);

/// The channel file carrying frames from `src` to `dst`.
fn channel_path(dir: &Path, src: usize, dst: usize) -> PathBuf {
    dir.join(format!("ch-{src}-to-{dst}.mpq"))
}

/// Outbound half of one channel: the append handle, opened lazily (the
/// first send creates the file; a peer that never hears from us never
/// sees one).
struct Writer {
    path: PathBuf,
    file: Option<File>,
}

impl Writer {
    fn write(&mut self, bytes: &[u8]) {
        if self.file.is_none() {
            self.file = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                    .unwrap_or_else(|e| {
                        panic!("mp shm: cannot open channel {}: {e}", self.path.display())
                    }),
            );
        }
        let file = self.file.as_mut().expect("opened above");
        file.write_all(bytes)
            .unwrap_or_else(|e| panic!("mp shm: append to {} failed: {e}", self.path.display()));
    }
}

/// Inbound half of one channel: a private read offset plus a buffer for
/// the tail of a frame whose bytes have not all landed yet.
struct Reader {
    path: PathBuf,
    file: Option<File>,
    offset: u64,
    partial: Vec<u8>,
}

impl Reader {
    /// Pulls newly appended bytes and decodes every complete frame into
    /// `out`. Returns how many frames were decoded.
    fn poll(&mut self, out: &mut Vec<Frame>) -> usize {
        if self.file.is_none() {
            // The peer may not have sent anything yet (the file is
            // created on first send); absent is just empty.
            self.file = File::open(&self.path).ok();
        }
        let Some(file) = &self.file else { return 0 };
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match file.read_at(&mut chunk, self.offset) {
                Ok(0) => break,
                Ok(n) => {
                    self.offset += n as u64;
                    self.partial.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("mp shm: read from {} failed: {e}", self.path.display()),
            }
        }
        let mut at = 0;
        let mut decoded = 0;
        while let Some((frame, used)) = Frame::decode(&self.partial[at..]) {
            out.push(frame);
            at += used;
            decoded += 1;
        }
        if at > 0 {
            self.partial.drain(..at);
        }
        decoded
    }
}

/// State behind the receive side: one [`Reader`] per peer plus the queue
/// of decoded-but-undelivered frames.
struct Inbox {
    readers: Vec<Reader>,
    ready: std::collections::VecDeque<Frame>,
    /// Rotating poll start index, so a chatty low-numbered peer cannot
    /// starve the rest.
    rr: usize,
}

impl Inbox {
    fn next_frame(&mut self) -> Option<Frame> {
        if let Some(f) = self.ready.pop_front() {
            return Some(f);
        }
        let n = self.readers.len();
        let mut buf = Vec::new();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            self.readers[idx].poll(&mut buf);
            self.ready.extend(buf.drain(..));
        }
        self.rr = (self.rr + 1) % n.max(1);
        self.ready.pop_front()
    }
}

/// The shared-memory-file transport (see the module docs).
pub(crate) struct ShmTransport {
    /// Outbound channels, indexed by destination process (`None` at our
    /// own index).
    writers: Vec<Option<Mutex<Writer>>>,
    inbox: Mutex<Inbox>,
}

impl ShmTransport {
    /// Opens the channels of process `me` in an `nprocs`-process session
    /// rooted at `dir` (which the launcher created).
    pub fn new(dir: &Path, me: usize, nprocs: usize) -> ShmTransport {
        assert!(
            dir.is_dir(),
            "mp shm: session directory {} does not exist (launcher wiring bug)",
            dir.display()
        );
        let writers = (0..nprocs)
            .map(|p| {
                (p != me).then(|| {
                    Mutex::new(Writer {
                        path: channel_path(dir, me, p),
                        file: None,
                    })
                })
            })
            .collect();
        let readers = (0..nprocs)
            .filter(|&p| p != me)
            .map(|p| Reader {
                path: channel_path(dir, p, me),
                file: None,
                offset: 0,
                partial: Vec::new(),
            })
            .collect();
        ShmTransport {
            writers,
            inbox: Mutex::new(Inbox {
                readers,
                ready: std::collections::VecDeque::new(),
                rr: 0,
            }),
        }
    }
}

impl Transport for ShmTransport {
    fn send(&self, dst_proc: usize, frame: &Frame) {
        let writer = self.writers[dst_proc]
            .as_ref()
            .unwrap_or_else(|| panic!("mp shm: send to self (proc {dst_proc})"));
        // Encode outside the lock; append under it. One write_all per
        // frame keeps the single-writer file a clean frame sequence.
        let bytes = frame.encode();
        writer.lock().write(&bytes);
    }

    fn recv(&self, timeout: Duration) -> Option<Frame> {
        let mut waited = Duration::ZERO;
        loop {
            if let Some(f) = self.inbox.lock().next_frame() {
                return Some(f);
            }
            if waited >= timeout {
                return None;
            }
            std::thread::sleep(POLL_SLEEP);
            waited += POLL_SLEEP;
        }
    }

    fn backend(&self) -> Backend {
        Backend::Shm
    }
}

#[cfg(test)]
mod tests {
    use super::super::wire::FrameKind;
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mp-shm-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn frames_cross_between_endpoints_in_order() {
        let dir = tmpdir("order");
        let a = ShmTransport::new(&dir, 0, 2);
        let b = ShmTransport::new(&dir, 1, 2);
        for i in 0..10u64 {
            let mut f = Frame::control(FrameKind::Data, 0, 0);
            f.a = i;
            f.payload = vec![i as u8; (i as usize) * 37];
            a.send(1, &f);
        }
        for i in 0..10u64 {
            let f = b
                .recv(Duration::from_secs(5))
                .expect("frame must be delivered");
            assert_eq!(f.a, i, "FIFO per channel");
            assert_eq!(f.payload.len(), (i as usize) * 37);
        }
        assert!(b.recv(Duration::from_millis(5)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_appends_defer_not_corrupt() {
        let dir = tmpdir("partial");
        let b = ShmTransport::new(&dir, 1, 2);
        let mut f = Frame::control(FrameKind::Data, 3, 0);
        f.payload = vec![7u8; 1000];
        let bytes = f.encode();
        // Simulate a writer caught mid-append: first half, then the rest.
        let path = channel_path(&dir, 0, 1);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(&bytes[..bytes.len() / 2]).unwrap();
        assert!(b.recv(Duration::from_millis(5)).is_none());
        file.write_all(&bytes[bytes.len() / 2..]).unwrap();
        let got = b.recv(Duration::from_secs(5)).expect("completed frame");
        assert_eq!(got, f);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
