//! Pluggable message-delivery backends: one matching-semantics contract,
//! three transports.
//!
//! Everything above message delivery — [`Payload`](crate::payload),
//! per-(src, comm, tag) mailboxes with non-overtaking wildcard matching,
//! rendezvous, the collectives, `mp::check` instrumentation — is
//! transport-agnostic: a send terminates in
//! [`World::deliver`](crate::runtime::World::deliver), and `deliver`
//! routes on *residency*:
//!
//! * **local** — the destination rank lives in this process: the message
//!   is pushed straight into its mailbox, exactly the seed runtime's
//!   path (byte-identical; see [`local`]).
//! * **shm** — the destination rank lives in another process on this
//!   host: the message is framed ([`wire`]) and appended to a
//!   single-writer/single-reader channel file on a shared-memory
//!   filesystem (see [`shm`]).
//! * **tcp** — the destination rank lives on (potentially) another host:
//!   the frame goes over a length-prefixed socket (see [`tcp`]).
//!
//! # Sessions, worlds and epochs
//!
//! A *session* is this process's membership in a multi-process world:
//! process index, rank→process map and a [`Transport`]. It is installed
//! explicitly from the environment ([`init_from_env`]) — the variables
//! are wired by the [`launcher`] — and every subsequent [`crate::run`]
//! call in the process becomes one *epoch* of that world: all processes
//! must call `run` with the same world size in the same order (the SPMD
//! discipline, process-level). Each epoch, `run` spawns rank threads for
//! the ranks *resident* in this process and returns only their results.
//!
//! Epoch teardown uses a flush barrier: after its residents join, each
//! process sends a `Barrier` frame to every peer and waits for theirs.
//! Channels are FIFO, so receipt of a peer's barrier proves every data
//! frame that peer sent this epoch has already been buffered — no frame
//! can leak into the next epoch.
//!
//! # Cross-process deadlock detection
//!
//! `mp::check`'s wait-edge instrumentation keeps working when the
//! wait-for graph spans processes. Each process runs a monitor thread
//! that watches its resident ranks exactly like the single-process
//! detector (stable activity across polls, every unfinished rank parked,
//! in-flight wakes ruled out via hand-off probes); on local stability it
//! serializes its wait edges as a `Stable` control frame to process 0.
//! Process 0 aggregates: when every process has reported, the global
//! sent/received data-frame counts balance (no frame in flight — the
//! classic counting method for distributed termination detection), and a
//! `Confirm`/`ConfirmAck` round proves every snapshot is still current,
//! it assembles the global wait-for graph, reuses the single-process
//! cycle finder, and broadcasts the [`Deadlock`](crate::check::Deadlock)
//! as a `Poison` frame — blocked ranks on every process unwind with the
//! diagnosis naming the cycle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::check::{self, Inspector, Settings, WaitSnapshot};
use crate::comm::Comm;
use crate::msg::Message;
use crate::payload::Payload;
use crate::runtime::World;

pub mod launcher;
pub(crate) mod local;
pub(crate) mod shm;
pub(crate) mod tcp;
pub(crate) mod wire;

use wire::{Frame, FrameKind, StableReport};

/// Environment variable selecting the backend (`local`, `shm`, `tcp`).
pub const ENV_BACKEND: &str = "MP_BACKEND";
/// Environment variable carrying the world size (total ranks).
pub const ENV_WORLD_SIZE: &str = "MP_WORLD_SIZE";
/// Environment variable carrying the number of processes.
pub const ENV_NPROCS: &str = "MP_NPROCS";
/// Environment variable carrying this process's index.
pub const ENV_PROC: &str = "MP_PROC";
/// Environment variable carrying the session directory (shm channel
/// files, tcp address files).
pub const ENV_WORLD_DIR: &str = "MP_WORLD_DIR";
/// Optional comma-separated rank→process map (`MP_RANK_PROCS=0,0,1,1`);
/// defaults to balanced contiguous blocks.
pub const ENV_RANK_PROCS: &str = "MP_RANK_PROCS";
/// Optional comma-separated `host:port` listener address per process for
/// the tcp backend; defaults to loopback rendezvous via the session dir.
pub const ENV_TCP_PEERS: &str = "MP_TCP_PEERS";
/// Optional bind address for this process's tcp listener
/// (default `127.0.0.1:0`).
pub const ENV_TCP_BIND: &str = "MP_TCP_BIND";

/// A message-delivery backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// In-process delivery (the seed path): every rank is a thread of
    /// this process.
    Local,
    /// Multiple processes on one host exchanging frames through
    /// shared-memory channel files.
    Shm,
    /// Length-prefixed socket framing; worlds may span hosts.
    Tcp,
}

impl Backend {
    /// The backend's canonical flag/env spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Local => "local",
            Backend::Shm => "shm",
            Backend::Tcp => "tcp",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "local" => Ok(Backend::Local),
            "shm" => Ok(Backend::Shm),
            "tcp" => Ok(Backend::Tcp),
            other => Err(format!(
                "unknown backend {other:?} (expected local, shm or tcp)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The world topology of a multi-process session: which process hosts
/// which rank.
#[derive(Clone, Debug)]
pub struct Topology {
    world: usize,
    nprocs: usize,
    me: usize,
    /// Global rank -> hosting process.
    rank_proc: Vec<u32>,
}

impl Topology {
    /// Balanced contiguous block mapping: process `i` hosts ranks
    /// `[i*world/nprocs, (i+1)*world/nprocs)`.
    pub fn blocks(world: usize, nprocs: usize, me: usize) -> Topology {
        assert!(world > 0, "an SPMD world needs at least one rank");
        assert!(nprocs > 0 && me < nprocs, "proc {me} of {nprocs}");
        let mut rank_proc = vec![0u32; world];
        for p in 0..nprocs {
            let lo = p * world / nprocs;
            let hi = (p + 1) * world / nprocs;
            for r in rank_proc.iter_mut().take(hi).skip(lo) {
                *r = p as u32;
            }
        }
        Topology {
            world,
            nprocs,
            me,
            rank_proc,
        }
    }

    /// Explicit rank→process mapping (the `MP_RANK_PROCS` form).
    pub fn explicit(rank_proc: Vec<u32>, nprocs: usize, me: usize) -> Topology {
        assert!(
            !rank_proc.is_empty(),
            "an SPMD world needs at least one rank"
        );
        assert!(nprocs > 0 && me < nprocs, "proc {me} of {nprocs}");
        for (r, &p) in rank_proc.iter().enumerate() {
            assert!(
                (p as usize) < nprocs,
                "rank {r} mapped to proc {p} of {nprocs}"
            );
        }
        Topology {
            world: rank_proc.len(),
            nprocs,
            me,
            rank_proc,
        }
    }

    /// Total ranks in the world.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Number of processes the world spans.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// This process's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// The process hosting global rank `rank`.
    pub fn proc_of(&self, rank: usize) -> usize {
        self.rank_proc[rank] as usize
    }

    /// Whether global rank `rank` lives in this process.
    pub fn resident(&self, rank: usize) -> bool {
        self.rank_proc[rank] as usize == self.me
    }

    /// The global ranks resident in this process, ascending.
    pub fn resident_ranks(&self) -> Vec<usize> {
        (0..self.world).filter(|&r| self.resident(r)).collect()
    }
}

/// Reliable, FIFO-per-ordered-process-pair frame delivery. `send` may
/// block briefly (file append, socket write) but never deadlocks against
/// `recv`; `recv` returns `None` on timeout.
pub(crate) trait Transport: Send + Sync {
    /// Sends `frame` to process `dst_proc`. FIFO with respect to every
    /// other send from this process to `dst_proc`.
    fn send(&self, dst_proc: usize, frame: &Frame);
    /// Receives the next frame from any peer, waiting up to `timeout`.
    fn recv(&self, timeout: Duration) -> Option<Frame>;
    /// Which backend this is (diagnostics).
    fn backend(&self) -> Backend;
}

/// One process's membership in a multi-process world.
pub(crate) struct Session {
    pub(crate) topo: Topology,
    backend: Backend,
    transport: Box<dyn Transport>,
    state: Mutex<SessState>,
    cv: Condvar,
    /// Data frames sent / received by this process (all epochs): the
    /// conservation check behind the cross-process deadlock detector.
    data_sent: AtomicU64,
    data_recvd: AtomicU64,
}

#[derive(Default)]
struct SessState {
    next_epoch: u32,
    current: Option<(u32, Arc<World>)>,
    /// Data frames for epochs this process has not installed yet.
    pending: HashMap<u32, Vec<(usize, Message)>>,
    /// Peer flush barriers received, per epoch.
    barriers: HashMap<u32, usize>,
    /// Latest stable report per process (process 0 only), tagged with
    /// the epoch it was taken in.
    reports: HashMap<usize, (u32, StableReport)>,
    /// Latest confirm ack per process: (gen, activity, sent, recvd).
    acks: HashMap<usize, (u64, u64, u64, u64)>,
}

static SESSION: OnceLock<Option<Arc<Session>>> = OnceLock::new();

/// The installed session, if [`init_from_env`] found one.
pub(crate) fn session() -> Option<Arc<Session>> {
    SESSION.get().and_then(Clone::clone)
}

/// A handle onto this process's multi-process session.
#[derive(Clone)]
pub struct Proc {
    sess: Arc<Session>,
}

impl Proc {
    /// The backend the session runs on. For a single-process session the
    /// *transport* degenerates to local even when `shm`/`tcp` was asked
    /// for; this reports what is actually carrying frames.
    pub fn backend(&self) -> Backend {
        if self.sess.topo.nprocs == 1 {
            self.sess.transport.backend()
        } else {
            self.sess.backend
        }
    }

    /// This process's index.
    pub fn index(&self) -> usize {
        self.sess.topo.me
    }

    /// Number of processes in the world.
    pub fn nprocs(&self) -> usize {
        self.sess.topo.nprocs
    }

    /// Total ranks in the world.
    pub fn world(&self) -> usize {
        self.sess.topo.world
    }

    /// Whether global rank `rank` is hosted by this process.
    pub fn resident(&self, rank: usize) -> bool {
        self.sess.topo.resident(rank)
    }
}

/// Installs the process-global session described by the `MP_*`
/// environment variables (wired by the [`launcher`]) and returns a
/// handle to it. Returns `None` when no multi-process backend is
/// requested (`MP_BACKEND` unset or `local`) — the process then runs
/// every rank in-process as always. Subsequent calls return the same
/// session; the environment is read once.
///
/// Worker binaries call this at startup, *before* any [`crate::run`]:
/// the session changes `run`'s contract (it returns only resident
/// ranks' results), so installation is explicit rather than ambient.
pub fn init_from_env() -> Option<Proc> {
    SESSION
        .get_or_init(|| build_session_from_env().map(Arc::new))
        .as_ref()
        .map(|sess| Proc {
            sess: Arc::clone(sess),
        })
}

/// The installed session handle, if any ([`init_from_env`] ran and found
/// a backend).
pub fn active() -> Option<Proc> {
    session().map(|sess| Proc { sess })
}

/// Panics when a multi-process session is installed: the traced, virtual,
/// checked and cooperative run paths are single-process by design (they
/// all need global visibility — a full trace, a global clock, a whole
/// wait-for graph, a shared scheduler — that one process of a larger
/// world cannot have).
pub(crate) fn assert_no_session(what: &str) {
    assert!(
        session().is_none(),
        "mp: {what} is not available under a multiprocess session \
         (worlds spanning processes support plain run() only)"
    );
}

fn env_usize(name: &str) -> usize {
    let v = std::env::var(name)
        .unwrap_or_else(|_| panic!("mp transport: {name} must be set alongside {ENV_BACKEND}"));
    v.parse()
        .unwrap_or_else(|_| panic!("mp transport: {name}={v:?} is not a number"))
}

fn build_session_from_env() -> Option<Session> {
    let backend = match std::env::var(ENV_BACKEND) {
        Ok(v) if !v.is_empty() && v != "local" => v
            .parse::<Backend>()
            .unwrap_or_else(|e| panic!("mp transport: {ENV_BACKEND}: {e}")),
        _ => return None,
    };
    let world = env_usize(ENV_WORLD_SIZE);
    let nprocs = env_usize(ENV_NPROCS);
    let me = env_usize(ENV_PROC);
    let topo = match std::env::var(ENV_RANK_PROCS) {
        Ok(map) => {
            let rank_proc: Vec<u32> = map
                .split(',')
                .map(|t| {
                    t.trim().parse().unwrap_or_else(|_| {
                        panic!("mp transport: bad {ENV_RANK_PROCS} entry {t:?}")
                    })
                })
                .collect();
            assert_eq!(
                rank_proc.len(),
                world,
                "mp transport: {ENV_RANK_PROCS} must name a proc for each of the {world} ranks"
            );
            Topology::explicit(rank_proc, nprocs, me)
        }
        Err(_) => Topology::blocks(world, nprocs, me),
    };
    let dir = std::path::PathBuf::from(std::env::var(ENV_WORLD_DIR).unwrap_or_else(|_| {
        panic!("mp transport: {ENV_WORLD_DIR} must point at the session directory")
    }));
    let transport: Box<dyn Transport> = if nprocs == 1 {
        Box::new(local::LocalTransport)
    } else {
        match backend {
            Backend::Local => unreachable!("local returns above"),
            Backend::Shm => Box::new(shm::ShmTransport::new(&dir, me, nprocs)),
            Backend::Tcp => Box::new(tcp::TcpTransport::connect(&dir, me, nprocs)),
        }
    };
    let sess = Session {
        topo,
        backend,
        transport,
        state: Mutex::new(SessState::default()),
        cv: Condvar::new(),
        data_sent: AtomicU64::new(0),
        data_recvd: AtomicU64::new(0),
    };
    Some(sess)
}

/// Spawns the session's pump thread. Called once, after the session Arc
/// exists (the pump holds a clone). Detached on purpose: it serves the
/// whole process lifetime and exits with it.
fn spawn_pump(sess: &Arc<Session>) {
    static PUMP_STARTED: OnceLock<()> = OnceLock::new();
    let sess = Arc::clone(sess);
    PUMP_STARTED.get_or_init(move || {
        if sess.topo.nprocs > 1 {
            std::thread::Builder::new()
                .name("mp-transport-pump".to_string())
                .spawn(move || pump(&sess))
                .expect("mp transport: cannot spawn the pump thread");
        }
    });
}

/// The receive pump: drains the transport and dispatches frames — data
/// into mailboxes (or the pending stash for not-yet-installed epochs),
/// control frames into the session/detector state.
fn pump(sess: &Arc<Session>) {
    loop {
        let Some(frame) = sess.transport.recv(Duration::from_millis(25)) else {
            continue;
        };
        let src_proc = frame.src_proc as usize;
        match frame.kind {
            FrameKind::Data => {
                sess.data_recvd.fetch_add(1, Ordering::Release);
                let dst = frame.b as usize;
                let msg = Message {
                    src: frame.a as usize,
                    full_tag: frame.c,
                    data: Payload::from_vec(frame.payload),
                    arrival: None,
                };
                let mut st = sess.state.lock();
                match &st.current {
                    Some((epoch, world)) if *epoch == frame.epoch => {
                        let world = Arc::clone(world);
                        drop(st);
                        world.deliver(dst, msg);
                    }
                    Some((epoch, _)) if *epoch > frame.epoch => {
                        panic!(
                            "mp transport: stale data frame for epoch {} while epoch {} is live \
                             (flush-barrier protocol violated)",
                            frame.epoch, epoch
                        );
                    }
                    _ => {
                        st.pending.entry(frame.epoch).or_default().push((dst, msg));
                    }
                }
            }
            FrameKind::Barrier => {
                let mut st = sess.state.lock();
                *st.barriers.entry(frame.epoch).or_insert(0) += 1;
                drop(st);
                sess.cv.notify_all();
            }
            FrameKind::Stable => {
                let report = wire::decode_report(&frame.payload);
                let mut st = sess.state.lock();
                st.reports.insert(src_proc, (frame.epoch, report));
                drop(st);
                sess.cv.notify_all();
            }
            FrameKind::Confirm => {
                // Reply with the counters as of *now*; proc 0 compares
                // them against the snapshot it is trying to confirm.
                let st = sess.state.lock();
                let activity = match &st.current {
                    Some((epoch, world)) if *epoch == frame.epoch => world
                        .inspector
                        .as_ref()
                        .map_or(u64::MAX, |insp| insp.activity()),
                    _ => u64::MAX, // no such epoch here: never confirms
                };
                drop(st);
                let ack = Frame {
                    kind: FrameKind::ConfirmAck,
                    epoch: frame.epoch,
                    src_proc: sess.topo.me as u32,
                    a: frame.a, // gen echo
                    b: activity,
                    c: sess.data_sent.load(Ordering::Acquire),
                    payload: sess
                        .data_recvd
                        .load(Ordering::Acquire)
                        .to_le_bytes()
                        .to_vec(),
                };
                sess.transport.send(src_proc, &ack);
            }
            FrameKind::ConfirmAck => {
                let recvd =
                    u64::from_le_bytes(frame.payload[..8].try_into().expect("8-byte ack payload"));
                let mut st = sess.state.lock();
                st.acks.insert(src_proc, (frame.a, frame.b, frame.c, recvd));
                drop(st);
                sess.cv.notify_all();
            }
            FrameKind::Poison => {
                let diagnosis = Arc::new(wire::decode_deadlock(&frame.payload));
                let st = sess.state.lock();
                if let Some((epoch, world)) = &st.current {
                    if *epoch == frame.epoch {
                        if let Some(insp) = &world.inspector {
                            insp.set_poison(diagnosis);
                        }
                    }
                }
            }
            FrameKind::Hello | FrameKind::Shutdown => {
                // Connection management; handled inside the transports.
            }
        }
    }
}

// ---------------------------------------------------------------------
// Residency routing
// ---------------------------------------------------------------------

/// A world's handle onto its session: consulted by
/// [`World::deliver`](crate::runtime::World::deliver) to route messages
/// for non-resident ranks over the transport.
pub(crate) struct RemoteWorld {
    sess: Arc<Session>,
    epoch: u32,
}

impl RemoteWorld {
    /// Whether `rank` lives in this process.
    pub(crate) fn resident(&self, rank: usize) -> bool {
        self.sess.topo.resident(rank)
    }

    /// Frames `msg` and sends it to the process hosting `dst`.
    pub(crate) fn send_data(&self, dst: usize, msg: &Message) {
        debug_assert!(!self.resident(dst));
        debug_assert!(msg.arrival.is_none(), "virtual worlds are single-process");
        let frame = Frame {
            kind: FrameKind::Data,
            epoch: self.epoch,
            src_proc: self.sess.topo.me as u32,
            a: msg.src as u64,
            b: dst as u64,
            c: msg.full_tag,
            payload: msg.data.as_slice().to_vec(),
        };
        self.sess.data_sent.fetch_add(1, Ordering::Release);
        self.sess
            .transport
            .send(self.sess.topo.proc_of(dst), &frame);
    }
}

// ---------------------------------------------------------------------
// The multi-process run path
// ---------------------------------------------------------------------

/// Runs one epoch of the session's world: spawns rank threads for the
/// resident ranks, routes non-resident traffic over the transport, and
/// returns the resident ranks' results in ascending rank order.
pub(crate) fn run_multiproc<R, F>(sess: &Arc<Session>, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert_eq!(
        n, sess.topo.world,
        "mp: run({n}) under a multiprocess session with world size {} — \
         the world size is fixed by the launcher",
        sess.topo.world
    );
    spawn_pump(sess);
    let residents = sess.topo.resident_ranks();
    // Every multiprocess world is instrumented: the cross-process
    // deadlock detector needs wait edges, and a poison channel is the
    // only way to unwind ranks blocked on a peer process that died.
    // The ring is kept tiny — event history belongs to `run_checked`.
    let settings = Settings {
        ring_capacity: 16,
        ..Settings::default()
    };
    let poll = settings.poll;
    let inspector = Arc::new(Inspector::new(n, settings));
    let mut world = World::new(n, false, Some(Arc::clone(&inspector)));
    let epoch = {
        let mut st = sess.state.lock();
        assert!(
            st.current.is_none(),
            "mp: nested run() under a multiprocess session"
        );
        let epoch = st.next_epoch;
        st.next_epoch += 1;
        epoch
    };
    world.remote = Some(RemoteWorld {
        sess: Arc::clone(sess),
        epoch,
    });
    let world = Arc::new(world);
    install_world(sess, epoch, &world);

    let done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let sess = Arc::clone(sess);
        let world = Arc::clone(&world);
        let insp = Arc::clone(&inspector);
        let residents = residents.clone();
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name("mp-proc-monitor".to_string())
            .spawn(move || monitor_loop(&sess, epoch, &world, &insp, &residents, &done, poll))
            .expect("mp transport: cannot spawn the stall monitor")
    };

    let outcomes = run_residents(&world, &inspector, &residents, n, &f);

    // Flush barrier: FIFO channels guarantee every data frame this
    // process sent in this epoch precedes its barrier, so once every
    // peer's barrier has arrived no frame of this epoch is in flight.
    let barrier = Frame::control(FrameKind::Barrier, epoch, sess.topo.me as u32);
    for p in 0..sess.topo.nprocs {
        if p != sess.topo.me {
            sess.transport.send(p, &barrier);
        }
    }
    wait_peer_barriers(sess, epoch);
    done.store(true, Ordering::Release);
    monitor.join().expect("the monitor never panics");
    end_epoch(sess, epoch);

    // Report in the same priority order as the single-process checked
    // path: a deadlock diagnosis first, then real rank panics.
    if let Some(diagnosis) = inspector.poisoned() {
        panic!("{}{diagnosis}", check::POISON_MARK);
    }
    let mut results = Vec::with_capacity(outcomes.len());
    for (rank, out) in residents.iter().zip(outcomes) {
        match out {
            Ok(r) => results.push(r),
            Err(e) => {
                let msg = crate::runtime::panic_message(&*e);
                panic!("rank {rank} panicked: {msg}");
            }
        }
    }
    results
}

fn install_world(sess: &Arc<Session>, epoch: u32, world: &Arc<World>) {
    let mut st = sess.state.lock();
    st.current = Some((epoch, Arc::clone(world)));
    let pending = st.pending.remove(&epoch).unwrap_or_default();
    drop(st);
    for (dst, msg) in pending {
        world.deliver(dst, msg);
    }
}

fn wait_peer_barriers(sess: &Arc<Session>, epoch: u32) {
    let peers = sess.topo.nprocs - 1;
    let timeout = crate::mailbox::deadlock_timeout();
    let slice = Duration::from_millis(50);
    let mut waited = Duration::ZERO;
    let mut st = sess.state.lock();
    while st.barriers.get(&epoch).copied().unwrap_or(0) < peers {
        if sess.cv.wait_for(&mut st, slice).timed_out() {
            waited += slice;
            if waited >= timeout {
                panic!(
                    "mp transport: flush barrier for epoch {epoch} timed out after {timeout:?} \
                     ({} of {peers} peer barriers arrived) — a peer process likely died",
                    st.barriers.get(&epoch).copied().unwrap_or(0)
                );
            }
        }
    }
}

fn end_epoch(sess: &Arc<Session>, epoch: u32) {
    let mut st = sess.state.lock();
    st.current = None;
    st.barriers.remove(&epoch);
    st.reports.clear();
    st.acks.clear();
    assert!(
        !st.pending.contains_key(&epoch),
        "mp transport: data frames for epoch {epoch} arrived after its flush barrier"
    );
}

/// Spawns and joins the resident rank threads (the multi-process mirror
/// of the single-process checked run's rank loop).
fn run_residents<R, F>(
    world: &Arc<World>,
    inspector: &Arc<Inspector>,
    residents: &[usize],
    n: usize,
    f: &F,
) -> Vec<std::thread::Result<R>>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    crate::runtime::spawn_rank_threads(world, residents, n, move |rank, comm| {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
        inspector.finish(rank);
        out
    })
}

// ---------------------------------------------------------------------
// The cross-process stall monitor
// ---------------------------------------------------------------------

/// Per-process monitor: detects local stability (every resident
/// unfinished rank parked, activity quiet, no wake in flight), publishes
/// the serialized wait snapshot to process 0, and — on process 0 —
/// aggregates the global diagnosis.
#[allow(clippy::too_many_arguments)]
fn monitor_loop(
    sess: &Arc<Session>,
    epoch: u32,
    world: &Arc<World>,
    insp: &Arc<Inspector>,
    residents: &[usize],
    done: &AtomicBool,
    poll: Duration,
) {
    let me = sess.topo.me;
    let mut last_activity = insp.activity();
    let mut stable = 0u32;
    let mut gen: u64 = 0;
    let mut published = false;
    while !done.load(Ordering::Acquire) {
        std::thread::sleep(poll);
        if done.load(Ordering::Acquire) || insp.poisoned().is_some() {
            break;
        }
        let activity = insp.activity();
        if activity == last_activity && check::ranks_stable(insp, residents) {
            stable += 1;
        } else {
            stable = 0;
            published = false;
        }
        last_activity = activity;
        if stable >= 3 && !published {
            let Some(waits) = check::snapshot_ranks(world, insp, residents) else {
                stable = 0; // a wake was in flight after all
                continue;
            };
            let mut inventory = Vec::new();
            for &r in residents {
                inventory.extend(world.mailboxes[r].inventory());
            }
            // Counter sampling order matters: activity after the
            // snapshot, so any wake between snapshot and the confirm
            // round shows up as a counter change.
            let report = StableReport {
                gen: {
                    gen += 1;
                    gen
                },
                activity: insp.activity(),
                sent: sess.data_sent.load(Ordering::Acquire),
                recvd: sess.data_recvd.load(Ordering::Acquire),
                waits,
                inventory,
            };
            if report.activity != activity {
                stable = 0;
                continue;
            }
            if me == 0 {
                sess.state.lock().reports.insert(0, (epoch, report));
            } else {
                let frame = Frame {
                    kind: FrameKind::Stable,
                    epoch,
                    src_proc: me as u32,
                    a: 0,
                    b: 0,
                    c: 0,
                    payload: wire::encode_report(&report),
                };
                sess.transport.send(0, &frame);
            }
            published = true;
        }
        if me == 0 {
            try_global_diagnosis(sess, epoch, insp, poll);
        }
    }
}

/// Process 0's aggregation step: with a stable report from every process
/// and balanced global data-frame counters, run a confirm round and — if
/// every snapshot is still current — assemble and broadcast the global
/// deadlock diagnosis.
fn try_global_diagnosis(sess: &Arc<Session>, epoch: u32, insp: &Arc<Inspector>, poll: Duration) {
    let nprocs = sess.topo.nprocs;
    let reports: Vec<StableReport> = {
        let st = sess.state.lock();
        let mut out = Vec::with_capacity(nprocs);
        for p in 0..nprocs {
            match st.reports.get(&p) {
                Some((e, r)) if *e == epoch => out.push(r.clone()),
                _ => return, // not every process is stable yet
            }
        }
        out
    };
    let sent: u64 = reports.iter().map(|r| r.sent).sum();
    let recvd: u64 = reports.iter().map(|r| r.recvd).sum();
    if sent != recvd {
        return; // data frames still in flight
    }
    // Confirm round: every worker must still be exactly at its snapshot.
    {
        let mut st = sess.state.lock();
        st.acks.clear();
    }
    for (p, report) in reports.iter().enumerate().skip(1) {
        let frame = Frame {
            kind: FrameKind::Confirm,
            epoch,
            src_proc: 0,
            a: report.gen,
            b: 0,
            c: 0,
            payload: Vec::new(),
        };
        sess.transport.send(p, &frame);
    }
    // Collect acks (with a bounded wait so a woken world never wedges
    // the monitor).
    let deadline_slices = 50u32;
    let mut slices = 0u32;
    let confirmed = loop {
        let st = sess.state.lock();
        let have_all = (1..nprocs).all(|p| st.acks.contains_key(&p));
        if have_all {
            let ok = (1..nprocs).all(|p| {
                let (gen, activity, psent, precvd) = st.acks[&p];
                let r = &reports[p];
                gen == r.gen && activity == r.activity && psent == r.sent && precvd == r.recvd
            });
            break ok;
        }
        drop(st);
        std::thread::sleep(poll);
        slices += 1;
        if slices >= deadline_slices {
            break false;
        }
    };
    // Re-validate process 0's own snapshot the same way.
    let self_ok = insp.activity() == reports[0].activity
        && sess.data_sent.load(Ordering::Acquire) == reports[0].sent
        && sess.data_recvd.load(Ordering::Acquire) == reports[0].recvd;
    if !confirmed || !self_ok {
        // Something moved: drop every report and wait for fresh ones.
        let mut st = sess.state.lock();
        st.reports.clear();
        st.acks.clear();
        return;
    }
    // A genuine global stall: assemble the world-wide diagnosis.
    let mut waits: Vec<WaitSnapshot> = reports.iter().flat_map(|r| r.waits.clone()).collect();
    waits.sort_by_key(|w| w.rank);
    let mut succ: Vec<Option<usize>> = vec![None; sess.topo.world];
    for w in &waits {
        if let check::WaitOn::Recv { src: Some(s), .. } = w.on {
            succ[w.rank] = Some(s);
        }
    }
    let cycle = check::find_cycle(&succ);
    let mut inventory: Vec<check::LaneInfo> =
        reports.iter().flat_map(|r| r.inventory.clone()).collect();
    inventory.sort_by_key(|l| (l.dst, l.src));
    let diagnosis = Arc::new(check::Deadlock {
        cycle,
        waits,
        inventory,
    });
    for p in 1..nprocs {
        let frame = Frame {
            kind: FrameKind::Poison,
            epoch,
            src_proc: 0,
            a: 0,
            b: 0,
            c: 0,
            payload: wire::encode_deadlock(&diagnosis),
        };
        sess.transport.send(p, &frame);
    }
    insp.set_poison(diagnosis);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_topology_is_balanced_and_contiguous() {
        let t = Topology::blocks(10, 4, 1);
        let sizes: Vec<usize> = (0..4)
            .map(|p| (0..10).filter(|&r| t.proc_of(r) == p).count())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
        // Contiguity: proc index is monotone in rank.
        for r in 1..10 {
            assert!(t.proc_of(r) >= t.proc_of(r - 1));
        }
        assert_eq!(t.resident_ranks(), vec![2, 3, 4]);
    }

    #[test]
    fn one_proc_hosts_everything() {
        let t = Topology::blocks(4, 1, 0);
        assert_eq!(t.resident_ranks(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn explicit_topology_round_robin() {
        let t = Topology::explicit(vec![0, 1, 0, 1], 2, 0);
        assert_eq!(t.resident_ranks(), vec![0, 2]);
        assert!(!t.resident(1));
    }

    #[test]
    fn backend_parses_both_ways() {
        for b in [Backend::Local, Backend::Shm, Backend::Tcp] {
            assert_eq!(b.as_str().parse::<Backend>().unwrap(), b);
        }
        assert!("rdma".parse::<Backend>().is_err());
    }
}
