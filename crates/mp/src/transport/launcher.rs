//! Process launcher: forks/execs the worker processes of a multi-process
//! world and wires its topology through the environment.
//!
//! The launcher is the `mpirun` of this runtime. It creates a fresh
//! session directory (on `/dev/shm` when the host has one, so the shm
//! backend's channel files are memory-backed), then spawns `nprocs`
//! copies of a worker program, giving process `i` the standard variable
//! set — `MP_BACKEND`, `MP_WORLD_SIZE`, `MP_NPROCS`, `MP_PROC=i`,
//! `MP_WORLD_DIR`, and `MP_RANK_PROCS` when the default block mapping is
//! overridden. A worker calls
//! [`transport::init_from_env`](super::init_from_env) at startup and
//! then runs the same `mp::run` calls as every sibling.
//!
//! Each worker's stdout/stderr goes to a log file in the session
//! directory; [`Fleet::wait`] collects exit statuses with a watchdog (a
//! worker that dies takes the whole fleet down after a short grace
//! period instead of hanging the launcher on a world that can never
//! finish) and returns statuses and captured logs.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use super::Backend;

/// Watchdog poll interval while waiting on children.
const WAIT_POLL: Duration = Duration::from_millis(20);

/// Grace period for remaining workers once one has failed.
const FAIL_GRACE: Duration = Duration::from_secs(2);

/// Builder for a multi-process world launch.
#[derive(Clone, Debug)]
pub struct Launcher {
    backend: Backend,
    world: usize,
    nprocs: usize,
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
    rank_procs: Option<Vec<u32>>,
    timeout: Duration,
}

impl Launcher {
    /// A launcher for `nprocs` copies of `program` hosting a `world`-rank
    /// world over `backend`.
    pub fn new(
        backend: Backend,
        world: usize,
        nprocs: usize,
        program: impl Into<PathBuf>,
    ) -> Launcher {
        assert!(world > 0, "an SPMD world needs at least one rank");
        assert!(nprocs > 0, "a world needs at least one process");
        Launcher {
            backend,
            world,
            nprocs,
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
            rank_procs: None,
            timeout: Duration::from_secs(300),
        }
    }

    /// Appends a command-line argument passed to every worker.
    pub fn arg(mut self, a: impl Into<String>) -> Launcher {
        self.args.push(a.into());
        self
    }

    /// Sets an environment variable on every worker (on top of the
    /// launcher's own `MP_*` wiring).
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Launcher {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Overrides the default balanced-block rank→process mapping.
    pub fn rank_procs(mut self, map: Vec<u32>) -> Launcher {
        assert_eq!(map.len(), self.world, "one proc per rank");
        self.rank_procs = Some(map);
        self
    }

    /// Overall fleet deadline for [`Fleet::wait`] (default 300 s).
    pub fn timeout(mut self, timeout: Duration) -> Launcher {
        self.timeout = timeout;
        self
    }

    /// Creates the session directory and spawns the worker processes.
    pub fn spawn(&self) -> Fleet {
        let dir = session_dir();
        let rank_procs_csv = self
            .rank_procs
            .as_ref()
            .map(|m| m.iter().map(u32::to_string).collect::<Vec<_>>().join(","));
        let mut children = Vec::with_capacity(self.nprocs);
        let mut logs = Vec::with_capacity(self.nprocs);
        for proc in 0..self.nprocs {
            let out_path = dir.join(format!("proc-{proc}.out"));
            let err_path = dir.join(format!("proc-{proc}.err"));
            let out = std::fs::File::create(&out_path)
                .unwrap_or_else(|e| panic!("mp launcher: create {}: {e}", out_path.display()));
            let err = std::fs::File::create(&err_path)
                .unwrap_or_else(|e| panic!("mp launcher: create {}: {e}", err_path.display()));
            let mut cmd = Command::new(&self.program);
            cmd.args(&self.args)
                .env(super::ENV_BACKEND, self.backend.as_str())
                .env(super::ENV_WORLD_SIZE, self.world.to_string())
                .env(super::ENV_NPROCS, self.nprocs.to_string())
                .env(super::ENV_PROC, proc.to_string())
                .env(super::ENV_WORLD_DIR, &dir)
                .stdin(Stdio::null())
                .stdout(Stdio::from(out))
                .stderr(Stdio::from(err));
            if let Some(csv) = &rank_procs_csv {
                cmd.env(super::ENV_RANK_PROCS, csv);
            }
            for (k, v) in &self.envs {
                cmd.env(k, v);
            }
            match cmd.spawn() {
                Ok(child) => {
                    children.push(Some(child));
                    logs.push((out_path, err_path));
                }
                Err(e) => {
                    // Kill what already started before failing the launch.
                    for c in children.iter_mut().flatten() {
                        let _ = c.kill();
                    }
                    let _ = std::fs::remove_dir_all(&dir);
                    panic!(
                        "mp launcher: cannot spawn worker {proc} ({}): {e}",
                        self.program.display()
                    );
                }
            }
        }
        Fleet {
            dir,
            children,
            logs,
            timeout: self.timeout,
        }
    }

    /// Convenience: spawn, wait, and panic with full logs unless every
    /// worker exits cleanly. Returns the per-process outcomes.
    pub fn run(&self) -> FleetOutcome {
        let outcome = self.spawn().wait();
        outcome.expect_success();
        outcome
    }
}

/// A fresh, uniquely named session directory, memory-backed when the
/// host offers `/dev/shm`.
fn session_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let root = if Path::new("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let dir = root.join(format!(
        "mp-world-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("mp launcher: cannot create {}: {e}", dir.display()));
    dir
}

/// A running fleet of worker processes.
pub struct Fleet {
    dir: PathBuf,
    children: Vec<Option<Child>>,
    logs: Vec<(PathBuf, PathBuf)>,
    timeout: Duration,
}

/// Exit status and captured output of one worker.
#[derive(Clone, Debug)]
pub struct ProcOutcome {
    /// The worker's process index.
    pub proc: usize,
    /// Exit code, when the worker exited on its own (`None`: killed by
    /// the watchdog or by a signal).
    pub status: Option<i32>,
    /// Captured stdout.
    pub stdout: String,
    /// Captured stderr.
    pub stderr: String,
}

/// What became of a fleet.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// Per-process outcomes, indexed by process.
    pub procs: Vec<ProcOutcome>,
    /// Whether the fleet hit the overall deadline.
    pub timed_out: bool,
}

impl FleetOutcome {
    /// Whether every worker exited with status 0.
    pub fn success(&self) -> bool {
        !self.timed_out && self.procs.iter().all(|p| p.status == Some(0))
    }

    /// Panics with every worker's status and stderr unless the fleet
    /// succeeded.
    pub fn expect_success(&self) {
        if self.success() {
            return;
        }
        let mut report = String::from("mp launcher: fleet failed\n");
        if self.timed_out {
            report.push_str("  (overall deadline exceeded)\n");
        }
        for p in &self.procs {
            report.push_str(&format!(
                "  proc {}: status {:?}\n--- stderr ---\n{}\n--- stdout ---\n{}\n",
                p.proc,
                p.status,
                p.stderr.trim_end(),
                p.stdout.trim_end()
            ));
        }
        panic!("{report}");
    }
}

impl Fleet {
    /// The session directory (channel files, address files, worker logs).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Waits for every worker with a watchdog: when one worker fails,
    /// the rest get [`FAIL_GRACE`] to finish (they may be unwinding from
    /// the same poison) and are then killed; when the overall deadline
    /// passes, everything is killed. Collects logs and removes the
    /// session directory.
    pub fn wait(mut self) -> FleetOutcome {
        let n = self.children.len();
        let mut status: Vec<Option<Option<i32>>> = vec![None; n]; // outer None = running
        let mut waited = Duration::ZERO;
        let mut grace: Option<Duration> = None;
        let mut timed_out = false;
        loop {
            let mut running = 0;
            for (i, slot) in self.children.iter_mut().enumerate() {
                let Some(child) = slot else { continue };
                match child.try_wait() {
                    Ok(Some(st)) => {
                        status[i] = Some(st.code());
                        *slot = None;
                        if st.code() != Some(0) && grace.is_none() {
                            grace = Some(Duration::ZERO);
                        }
                    }
                    Ok(None) => running += 1,
                    Err(e) => panic!("mp launcher: wait on worker {i} failed: {e}"),
                }
            }
            if running == 0 {
                break;
            }
            let kill_all = match &mut grace {
                Some(g) if *g >= FAIL_GRACE => true,
                Some(g) => {
                    *g += WAIT_POLL;
                    false
                }
                None => false,
            };
            if waited >= self.timeout {
                timed_out = true;
            }
            if kill_all || timed_out {
                for slot in self.children.iter_mut() {
                    if let Some(child) = slot {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    *slot = None;
                }
                // Killed workers keep their outer `None` -> status None.
                for st in status.iter_mut() {
                    st.get_or_insert(None);
                }
                break;
            }
            std::thread::sleep(WAIT_POLL);
            waited += WAIT_POLL;
        }
        let procs = (0..n)
            .map(|i| ProcOutcome {
                proc: i,
                status: status[i].flatten(),
                stdout: std::fs::read_to_string(&self.logs[i].0).unwrap_or_default(),
                stderr: std::fs::read_to_string(&self.logs[i].1).unwrap_or_default(),
            })
            .collect();
        let _ = std::fs::remove_dir_all(&self.dir);
        FleetOutcome { procs, timed_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_dirs_are_unique_and_created() {
        let a = session_dir();
        let b = session_dir();
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn fleet_of_shells_succeeds_and_captures_output() {
        let outcome = Launcher::new(Backend::Shm, 2, 2, "/bin/sh")
            .arg("-c")
            .arg("echo proc $MP_PROC of $MP_NPROCS world $MP_WORLD_SIZE")
            .timeout(Duration::from_secs(30))
            .run();
        assert!(outcome.success());
        assert_eq!(outcome.procs.len(), 2);
        assert!(outcome.procs[0].stdout.contains("proc 0 of 2 world 2"));
        assert!(outcome.procs[1].stdout.contains("proc 1 of 2 world 2"));
    }

    #[test]
    fn failing_worker_fails_the_fleet() {
        let outcome = Launcher::new(Backend::Shm, 2, 2, "/bin/sh")
            .arg("-c")
            .arg("if [ \"$MP_PROC\" = 1 ]; then echo doomed >&2; exit 3; fi")
            .timeout(Duration::from_secs(30))
            .spawn()
            .wait();
        assert!(!outcome.success());
        assert_eq!(outcome.procs[1].status, Some(3));
        assert!(outcome.procs[1].stderr.contains("doomed"));
    }
}
