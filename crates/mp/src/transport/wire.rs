//! Length-prefixed wire framing shared by the shm and tcp backends.
//!
//! Every cross-process message — payload data, epoch flush barriers and
//! the mpcheck control traffic — travels as one [`Frame`]:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "MPW1" (little-endian u32 0x3157504D)
//!      4     1  kind (FrameKind discriminant)
//!      5     3  reserved, zero
//!      8     4  epoch        (LE u32)
//!     12     4  source proc  (LE u32)
//!     16     8  field a      (LE u64; Data: source world rank)
//!     24     8  field b      (LE u64; Data: destination world rank)
//!     32     8  field c      (LE u64; Data: packed comm id + tag)
//!     40     8  payload length (LE u64)
//!     48     n  payload bytes
//! ```
//!
//! The header is fixed at [`HEADER_BYTES`] so stream decoders can wait
//! for a complete header, learn the payload length, then wait for the
//! rest — a partially written frame is never misparsed, only deferred.
//! Everything is little-endian; the framing is identical on the shm and
//! tcp paths by construction (one encoder, one decoder).

use std::io::{Read, Write};

use crate::check::{CollSite, Deadlock, LaneInfo, WaitOn, WaitSnapshot};

/// Frame magic: `b"MPW1"` read as a little-endian u32.
pub(crate) const MAGIC: u32 = u32::from_le_bytes(*b"MPW1");

/// Fixed size of the frame header preceding the payload.
pub(crate) const HEADER_BYTES: usize = 48;

/// Ceiling on a frame payload (1 GiB): far above any benchmark message,
/// low enough that a corrupt length field fails fast instead of
/// attempting an absurd allocation.
pub(crate) const MAX_PAYLOAD: u64 = 1 << 30;

/// What a frame carries. `Data` is the only payload-bearing kind on the
/// benchmark fast path; the rest are control traffic (epoch teardown and
/// the cross-process deadlock detector).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FrameKind {
    /// A point-to-point message for a rank resident on another process.
    Data = 0,
    /// Epoch flush barrier: "every Data frame I will ever send in this
    /// epoch precedes this frame on this channel".
    Barrier = 1,
    /// A worker's stable wait snapshot (serialized wait edges), sent to
    /// proc 0 for global deadlock aggregation.
    Stable = 2,
    /// Proc 0 asking a worker to confirm its snapshot is still current.
    Confirm = 3,
    /// The worker's reply: current activity / sent / received counters.
    ConfirmAck = 4,
    /// A global deadlock diagnosis, broadcast by proc 0; receivers poison
    /// their local world so blocked ranks unwind with the diagnosis.
    Poison = 5,
    /// TCP connection preamble identifying the connecting proc.
    Hello = 6,
    /// Graceful connection teardown.
    Shutdown = 7,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0 => FrameKind::Data,
            1 => FrameKind::Barrier,
            2 => FrameKind::Stable,
            3 => FrameKind::Confirm,
            4 => FrameKind::ConfirmAck,
            5 => FrameKind::Poison,
            6 => FrameKind::Hello,
            7 => FrameKind::Shutdown,
            _ => return None,
        })
    }
}

/// One wire frame (see the module docs for the byte layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// The `mp::run` epoch the frame belongs to.
    pub epoch: u32,
    /// Index of the sending process.
    pub src_proc: u32,
    /// Kind-specific header field (Data: source world rank).
    pub a: u64,
    /// Kind-specific header field (Data: destination world rank).
    pub b: u64,
    /// Kind-specific header field (Data: packed comm id + tag).
    pub c: u64,
    /// Payload bytes (Data: the encoded message payload).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A control frame with no payload.
    pub fn control(kind: FrameKind, epoch: u32, src_proc: u32) -> Frame {
        Frame {
            kind,
            epoch,
            src_proc,
            a: 0,
            b: 0,
            c: 0,
            payload: Vec::new(),
        }
    }

    /// Serializes the frame (header + payload) into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(HEADER_BYTES + self.payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.kind as u8);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.src_proc.to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
        out.extend_from_slice(&self.c.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Serializes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Attempts to decode one frame from the front of `buf`. Returns the
    /// frame and the number of bytes consumed, or `None` when `buf` does
    /// not yet hold a complete frame (stream decoders wait for more
    /// bytes). Panics on a corrupt header — a framing bug, not a
    /// recoverable condition.
    pub fn decode(buf: &[u8]) -> Option<(Frame, usize)> {
        if buf.len() < HEADER_BYTES {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        assert_eq!(magic, MAGIC, "mp transport: bad frame magic {magic:#x}");
        let kind = FrameKind::from_u8(buf[4])
            .unwrap_or_else(|| panic!("mp transport: unknown frame kind {}", buf[4]));
        let epoch = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let src_proc = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
        let a = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes"));
        let c = u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(buf[40..48].try_into().expect("8 bytes"));
        assert!(
            len <= MAX_PAYLOAD,
            "mp transport: frame payload length {len} exceeds the {MAX_PAYLOAD} ceiling"
        );
        let total = HEADER_BYTES + len as usize;
        if buf.len() < total {
            return None;
        }
        Some((
            Frame {
                kind,
                epoch,
                src_proc,
                a,
                b,
                c,
                payload: buf[HEADER_BYTES..total].to_vec(),
            },
            total,
        ))
    }
}

/// Reads one frame from a blocking byte stream (the tcp reader threads).
/// Returns `Ok(None)` on clean EOF at a frame boundary.
pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_BYTES];
    let mut filled = 0;
    while filled < HEADER_BYTES {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "mp transport: connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    let len = u64::from_le_bytes(header[40..48].try_into().expect("8 bytes"));
    assert!(
        len <= MAX_PAYLOAD,
        "mp transport: frame payload length {len} exceeds the {MAX_PAYLOAD} ceiling"
    );
    let mut buf = Vec::with_capacity(HEADER_BYTES + len as usize);
    buf.extend_from_slice(&header);
    buf.resize(HEADER_BYTES + len as usize, 0);
    r.read_exact(&mut buf[HEADER_BYTES..])?;
    let (frame, consumed) = Frame::decode(&buf).expect("buffer holds a complete frame");
    debug_assert_eq!(consumed, buf.len());
    Ok(Some(frame))
}

/// Writes one frame to a blocking byte stream.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

// ---------------------------------------------------------------------
// Control payload encodings (mpcheck traffic)
// ---------------------------------------------------------------------

/// A worker process's stable wait snapshot: every resident unfinished
/// rank is parked (re-verified against in-flight wakes), plus the
/// counters proc 0 needs to rule out frames still in flight.
#[derive(Clone, Debug)]
pub(crate) struct StableReport {
    /// Monotonic per-proc snapshot generation.
    pub gen: u64,
    /// The local inspector's activity counter at snapshot time.
    pub activity: u64,
    /// Total Data frames this proc has sent this epoch.
    pub sent: u64,
    /// Total Data frames this proc has received this epoch.
    pub recvd: u64,
    /// The resident blocked ranks and what they wait on.
    pub waits: Vec<WaitSnapshot>,
    /// Queued-but-unmatched message lanes in resident mailboxes.
    pub inventory: Vec<LaneInfo>,
}

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Dec<'_> {
    fn u8(&mut self) -> u8 {
        let v = self.buf[self.at];
        self.at += 1;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.at..self.at + 4].try_into().expect("4 bytes"));
        self.at += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.at..self.at + 8].try_into().expect("8 bytes"));
        self.at += 8;
        v
    }
    fn str(&mut self) -> String {
        let len = self.u32() as usize;
        let s = String::from_utf8(self.buf[self.at..self.at + len].to_vec())
            .expect("control strings are UTF-8");
        self.at += len;
        s
    }
}

/// Collective op names cross the wire as strings but [`CollSite::op`] is
/// `&'static str`; decode through this intern table of the runtime's op
/// names, leaking only a genuinely unknown name (diagnosis path only,
/// never the fast path).
fn intern_op(name: String) -> &'static str {
    const KNOWN: &[&str] = &[
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "gatherv",
        "scatter",
        "scatterv",
        "allgather",
        "allgatherv",
        "alltoall",
        "alltoallv",
        "reduce_scatter",
        "scan",
        "exscan",
        "split",
        "dup",
        "sendrecv",
    ];
    for k in KNOWN {
        if *k == name {
            return k;
        }
    }
    Box::leak(name.into_boxed_str())
}

fn enc_wait_on(e: &mut Enc, on: &WaitOn) {
    match on {
        WaitOn::Recv { comm, src, tag } => {
            e.u8(0);
            e.u32(*comm);
            match src {
                Some(s) => {
                    e.u8(1);
                    e.u64(*s as u64);
                }
                None => e.u8(0),
            }
            match tag {
                Some(t) => {
                    e.u8(1);
                    e.u32(*t);
                }
                None => e.u8(0),
            }
        }
        WaitOn::Rendezvous { key } => {
            e.u8(1);
            e.u64(*key);
        }
    }
}

fn dec_wait_on(d: &mut Dec) -> WaitOn {
    match d.u8() {
        0 => {
            let comm = d.u32();
            let src = (d.u8() == 1).then(|| d.u64() as usize);
            let tag = (d.u8() == 1).then(|| d.u32());
            WaitOn::Recv { comm, src, tag }
        }
        1 => WaitOn::Rendezvous { key: d.u64() },
        k => panic!("mp transport: unknown WaitOn variant {k}"),
    }
}

fn enc_waits(e: &mut Enc, waits: &[WaitSnapshot]) {
    e.u32(waits.len() as u32);
    for w in waits {
        e.u64(w.rank as u64);
        enc_wait_on(e, &w.on);
        match &w.coll {
            Some(site) => {
                e.u8(1);
                e.str(site.op);
                e.u32(site.comm);
                e.u32(site.index);
            }
            None => e.u8(0),
        }
    }
}

fn dec_waits(d: &mut Dec) -> Vec<WaitSnapshot> {
    let n = d.u32() as usize;
    (0..n)
        .map(|_| {
            let rank = d.u64() as usize;
            let on = dec_wait_on(d);
            let coll = (d.u8() == 1).then(|| {
                let op = intern_op(d.str());
                CollSite {
                    op,
                    comm: d.u32(),
                    index: d.u32(),
                }
            });
            WaitSnapshot { rank, on, coll }
        })
        .collect()
}

fn enc_inventory(e: &mut Enc, inv: &[LaneInfo]) {
    e.u32(inv.len() as u32);
    for lane in inv {
        e.u64(lane.dst as u64);
        e.u64(lane.src as u64);
        e.u32(lane.comm);
        e.u32(lane.tag);
        e.u64(lane.queued as u64);
        e.u64(lane.bytes as u64);
    }
}

fn dec_inventory(d: &mut Dec) -> Vec<LaneInfo> {
    let n = d.u32() as usize;
    (0..n)
        .map(|_| LaneInfo {
            dst: d.u64() as usize,
            src: d.u64() as usize,
            comm: d.u32(),
            tag: d.u32(),
            queued: d.u64() as usize,
            bytes: d.u64() as usize,
        })
        .collect()
}

/// Encodes a [`StableReport`] as a `Stable` frame payload.
pub(crate) fn encode_report(r: &StableReport) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.u64(r.gen);
    e.u64(r.activity);
    e.u64(r.sent);
    e.u64(r.recvd);
    enc_waits(&mut e, &r.waits);
    enc_inventory(&mut e, &r.inventory);
    e.0
}

/// Decodes a `Stable` frame payload.
pub(crate) fn decode_report(buf: &[u8]) -> StableReport {
    let mut d = Dec { buf, at: 0 };
    StableReport {
        gen: d.u64(),
        activity: d.u64(),
        sent: d.u64(),
        recvd: d.u64(),
        waits: dec_waits(&mut d),
        inventory: dec_inventory(&mut d),
    }
}

/// Encodes a deadlock diagnosis as a `Poison` frame payload.
pub(crate) fn encode_deadlock(d: &Deadlock) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    match &d.cycle {
        Some(cycle) => {
            e.u8(1);
            e.u32(cycle.len() as u32);
            for r in cycle {
                e.u64(*r as u64);
            }
        }
        None => e.u8(0),
    }
    enc_waits(&mut e, &d.waits);
    enc_inventory(&mut e, &d.inventory);
    e.0
}

/// Decodes a `Poison` frame payload.
pub(crate) fn decode_deadlock(buf: &[u8]) -> Deadlock {
    let mut d = Dec { buf, at: 0 };
    let cycle = (d.u8() == 1).then(|| {
        let n = d.u32() as usize;
        (0..n).map(|_| d.u64() as usize).collect()
    });
    Deadlock {
        cycle,
        waits: dec_waits(&mut d),
        inventory: dec_inventory(&mut d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(frame: &Frame) {
        let bytes = frame.encode();
        let (back, consumed) = Frame::decode(&bytes).expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(&back, frame);
        // Stream decode agrees with buffer decode.
        let mut cursor = std::io::Cursor::new(bytes);
        let streamed = read_frame(&mut cursor).expect("io ok").expect("one frame");
        assert_eq!(&streamed, frame);
    }

    #[test]
    fn empty_payload_roundtrips() {
        roundtrip(&Frame::control(FrameKind::Barrier, 7, 3));
    }

    #[test]
    fn payload_past_rendezvous_threshold_roundtrips() {
        let len = crate::coll::LONG_MSG_THRESHOLD + 1;
        roundtrip(&Frame {
            kind: FrameKind::Data,
            epoch: 2,
            src_proc: 1,
            a: 1,
            b: 0,
            c: 0xDEAD_BEEF,
            payload: (0..len).map(|i| (i * 31) as u8).collect(),
        });
    }

    #[test]
    fn incomplete_buffers_defer() {
        let frame = Frame {
            kind: FrameKind::Data,
            epoch: 1,
            src_proc: 0,
            a: 2,
            b: 3,
            c: 0x1234,
            payload: vec![9; 100],
        };
        let bytes = frame.encode();
        for cut in [0, 1, HEADER_BYTES - 1, HEADER_BYTES, bytes.len() - 1] {
            assert!(Frame::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        assert!(Frame::decode(&bytes).is_some());
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let a = Frame::control(FrameKind::Barrier, 1, 0);
        let b = Frame {
            kind: FrameKind::Data,
            epoch: 1,
            src_proc: 0,
            a: 0,
            b: 1,
            c: 5,
            payload: vec![1, 2, 3],
        };
        let mut buf = a.encode();
        buf.extend_from_slice(&b.encode());
        let (first, used) = Frame::decode(&buf).unwrap();
        assert_eq!(first, a);
        let (second, used2) = Frame::decode(&buf[used..]).unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    #[should_panic(expected = "bad frame magic")]
    fn corrupt_magic_panics() {
        let mut bytes = Frame::control(FrameKind::Barrier, 0, 0).encode();
        bytes[0] ^= 0xFF;
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn reports_roundtrip() {
        let report = StableReport {
            gen: 3,
            activity: 41,
            sent: 7,
            recvd: 7,
            waits: vec![
                WaitSnapshot {
                    rank: 1,
                    on: WaitOn::Recv {
                        comm: 0,
                        src: Some(0),
                        tag: Some(9),
                    },
                    coll: Some(CollSite {
                        op: "allreduce",
                        comm: 0,
                        index: 4,
                    }),
                },
                WaitSnapshot {
                    rank: 2,
                    on: WaitOn::Rendezvous { key: 0xABCD },
                    coll: None,
                },
            ],
            inventory: vec![LaneInfo {
                dst: 1,
                src: 0,
                comm: 0,
                tag: 3,
                queued: 2,
                bytes: 64,
            }],
        };
        let back = decode_report(&encode_report(&report));
        assert_eq!(back.gen, 3);
        assert_eq!(back.activity, 41);
        assert_eq!(back.waits.len(), 2);
        assert_eq!(back.waits[0].rank, 1);
        assert!(matches!(
            back.waits[0].on,
            WaitOn::Recv {
                comm: 0,
                src: Some(0),
                tag: Some(9)
            }
        ));
        let site = back.waits[0].coll.expect("coll site survives");
        assert_eq!(site.op, "allreduce");
        assert_eq!(site.index, 4);
        assert!(matches!(
            back.waits[1].on,
            WaitOn::Rendezvous { key: 0xABCD }
        ));
        assert_eq!(back.inventory.len(), 1);
        assert_eq!(back.inventory[0].bytes, 64);
    }

    #[test]
    fn deadlock_roundtrip_preserves_display() {
        let d = Deadlock {
            cycle: Some(vec![0, 1]),
            waits: vec![
                WaitSnapshot {
                    rank: 0,
                    on: WaitOn::Recv {
                        comm: 0,
                        src: Some(1),
                        tag: Some(1),
                    },
                    coll: None,
                },
                WaitSnapshot {
                    rank: 1,
                    on: WaitOn::Recv {
                        comm: 0,
                        src: Some(0),
                        tag: Some(1),
                    },
                    coll: None,
                },
            ],
            inventory: Vec::new(),
        };
        let back = decode_deadlock(&encode_deadlock(&d));
        assert_eq!(format!("{back}"), format!("{d}"));
        assert!(format!("{back}").contains("wait-for cycle: 0 -> 1 -> 0"));
    }

    // Satellite: encode -> frame -> decode is the identity over arbitrary
    // payload sizes, including empty payloads and payloads past the
    // rendezvous threshold (LONG_MSG_THRESHOLD = 32 KiB).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn frame_roundtrip_is_identity(
            (kind, epoch, src_proc) in (0u8..8, 0u32..1000, 0u32..64),
            (a, b, c) in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
            len in 0usize..(crate::coll::LONG_MSG_THRESHOLD + 8192),
            seed in 0u64..u64::MAX,
        ) {
            // Deterministic pseudo-random payload of the sampled length.
            let mut state = seed | 1;
            let payload: Vec<u8> = (0..len)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state as u8
                })
                .collect();
            let frame = Frame {
                kind: FrameKind::from_u8(kind).expect("sampled in range"),
                epoch,
                src_proc,
                a,
                b,
                c,
                payload,
            };
            let bytes = frame.encode();
            prop_assert_eq!(bytes.len(), HEADER_BYTES + frame.payload.len());
            let (back, consumed) = Frame::decode(&bytes).expect("complete frame");
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(back, frame);
        }
    }
}
