//! TCP transport: length-prefixed socket framing so a world can span
//! hosts (loopback in CI).
//!
//! # Connection setup
//!
//! Every process binds a listener (`MP_TCP_BIND`, default `127.0.0.1:0`)
//! and publishes its actual address. Two publication modes:
//!
//! * **Directory rendezvous** (single host, the launcher default): each
//!   process writes `tcp-{me}.addr` into the shared session directory —
//!   atomically, via write-to-temp + rename — and peers poll for it.
//! * **Static peer list** (multi-host): `MP_TCP_PEERS` carries one
//!   `host:port` per process; every process binds its own entry and no
//!   files are exchanged.
//!
//! One connection per *unordered* process pair: the higher-index process
//! connects to the lower's listener and opens with a `Hello` frame naming
//! itself, so the acceptor knows which peer each socket is. Send and
//! receive directions share the socket; TCP gives FIFO per direction,
//! which is all the epoch protocol needs.
//!
//! A reader thread per connection decodes frames off the stream and
//! feeds one process-wide channel; `recv` is just a timed pop. Writers
//! share per-peer `Mutex<TcpStream>` handles with `TCP_NODELAY` set —
//! benchmark frames must not sit in Nagle buffers.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

use parking_lot::Mutex;

use super::wire::{read_frame, Frame, FrameKind};
use super::{Backend, Transport};

/// How long connection setup may take before the world is declared dead.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

/// Polling interval while waiting for a peer's address file / listener.
const CONNECT_SLEEP: Duration = Duration::from_millis(10);

/// The address file process `p` publishes under directory rendezvous.
fn addr_path(dir: &Path, p: usize) -> PathBuf {
    dir.join(format!("tcp-{p}.addr"))
}

/// The socket-backed transport (see the module docs).
pub(crate) struct TcpTransport {
    /// Outbound stream per peer (`None` at our own index).
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// All reader threads feed this channel; `Receiver` is single-consumer
    /// and not `Sync`, so the session's pump takes it through a mutex.
    rx: Mutex<mpsc::Receiver<Frame>>,
}

impl TcpTransport {
    /// Establishes the full mesh for process `me` of `nprocs`, publishing
    /// and resolving addresses through `dir` (or `MP_TCP_PEERS`).
    pub fn connect(dir: &Path, me: usize, nprocs: usize) -> TcpTransport {
        let peers_env = std::env::var(super::ENV_TCP_PEERS).ok();
        let static_peers: Option<Vec<String>> = peers_env.map(|v| {
            let list: Vec<String> = v.split(',').map(|s| s.trim().to_string()).collect();
            assert_eq!(
                list.len(),
                nprocs,
                "mp tcp: {} must list one host:port per process",
                super::ENV_TCP_PEERS
            );
            list
        });
        let bind_addr = match (&static_peers, std::env::var(super::ENV_TCP_BIND).ok()) {
            (_, Some(explicit)) => explicit,
            (Some(peers), None) => peers[me].clone(),
            (None, None) => "127.0.0.1:0".to_string(),
        };
        let listener = TcpListener::bind(&bind_addr)
            .unwrap_or_else(|e| panic!("mp tcp: cannot bind {bind_addr}: {e}"));
        let local = listener
            .local_addr()
            .expect("a bound listener has an address");
        if static_peers.is_none() {
            publish_addr(dir, me, &local.to_string());
        }
        let (tx, rx) = mpsc::channel::<Frame>();
        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..nprocs).map(|_| None).collect();
        // Lower-index peers: we dial them.
        for p in 0..me {
            let addr = match &static_peers {
                Some(peers) => peers[p].clone(),
                None => wait_addr(dir, p),
            };
            let mut stream = dial(&addr, p);
            let hello = Frame::control(FrameKind::Hello, 0, me as u32);
            super::wire::write_frame(&mut stream, &hello)
                .unwrap_or_else(|e| panic!("mp tcp: hello to proc {p} failed: {e}"));
            spawn_reader(p, stream.try_clone().expect("clone stream"), tx.clone());
            writers[p] = Some(Mutex::new(stream));
        }
        // Higher-index peers: they dial us; Hello tells us who is who.
        for _ in me + 1..nprocs {
            let (stream, _) = listener
                .accept()
                .unwrap_or_else(|e| panic!("mp tcp: accept on {local} failed: {e}"));
            stream.set_nodelay(true).ok();
            let mut reader = stream.try_clone().expect("clone stream");
            let hello = read_frame(&mut reader)
                .unwrap_or_else(|e| panic!("mp tcp: reading hello failed: {e}"))
                .expect("peer closed before hello");
            assert_eq!(hello.kind, FrameKind::Hello, "first frame must be Hello");
            let p = hello.src_proc as usize;
            assert!(
                p > me && p < nprocs && writers[p].is_none(),
                "mp tcp: unexpected hello from proc {p}"
            );
            spawn_reader(p, reader, tx.clone());
            writers[p] = Some(Mutex::new(stream));
        }
        TcpTransport {
            writers,
            rx: Mutex::new(rx),
        }
    }
}

/// Publishes `addr` as process `p`'s listener address: write to a temp
/// name, then rename — readers only ever see a complete file.
fn publish_addr(dir: &Path, p: usize, addr: &str) {
    let tmp = dir.join(format!(".tcp-{p}.addr.tmp"));
    std::fs::write(&tmp, addr)
        .unwrap_or_else(|e| panic!("mp tcp: cannot write {}: {e}", tmp.display()));
    let fin = addr_path(dir, p);
    std::fs::rename(&tmp, &fin)
        .unwrap_or_else(|e| panic!("mp tcp: cannot publish {}: {e}", fin.display()));
}

/// Polls for peer `p`'s address file.
fn wait_addr(dir: &Path, p: usize) -> String {
    let path = addr_path(dir, p);
    let mut waited = Duration::ZERO;
    loop {
        if let Ok(addr) = std::fs::read_to_string(&path) {
            return addr;
        }
        if waited >= CONNECT_TIMEOUT {
            panic!(
                "mp tcp: peer {p} never published {} — did its process start?",
                path.display()
            );
        }
        std::thread::sleep(CONNECT_SLEEP);
        waited += CONNECT_SLEEP;
    }
}

/// Dials `addr`, retrying while the peer's listener may still be coming
/// up (the address is published after bind, but a slow accept loop or a
/// SYN-queue hiccup still warrants patience).
fn dial(addr: &str, p: usize) -> TcpStream {
    let mut waited = Duration::ZERO;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return stream;
            }
            Err(e) => {
                if waited >= CONNECT_TIMEOUT {
                    panic!("mp tcp: cannot connect to proc {p} at {addr}: {e}");
                }
                std::thread::sleep(CONNECT_SLEEP);
                waited += CONNECT_SLEEP;
            }
        }
    }
}

/// One reader thread per connection: decode frames, feed the shared
/// channel, exit on clean EOF or an explicit `Shutdown`.
fn spawn_reader(peer: usize, mut stream: TcpStream, tx: mpsc::Sender<Frame>) {
    std::thread::Builder::new()
        .name(format!("mp-tcp-read-{peer}"))
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(Some(frame)) => {
                    if frame.kind == FrameKind::Shutdown {
                        return;
                    }
                    if tx.send(frame).is_err() {
                        return; // transport dropped; nothing to feed
                    }
                }
                Ok(None) => return, // clean EOF: peer exited
                Err(_) => return,   // reset mid-frame: peer died; the
                                     // flush-barrier timeout reports it
            }
        })
        .expect("mp tcp: cannot spawn a reader thread");
}

impl Transport for TcpTransport {
    fn send(&self, dst_proc: usize, frame: &Frame) {
        let stream = self.writers[dst_proc]
            .as_ref()
            .unwrap_or_else(|| panic!("mp tcp: send to self (proc {dst_proc})"));
        let bytes = frame.encode();
        stream
            .lock()
            .write_all(&bytes)
            .unwrap_or_else(|e| panic!("mp tcp: send to proc {dst_proc} failed: {e}"));
    }

    fn recv(&self, timeout: Duration) -> Option<Frame> {
        self.rx.lock().recv_timeout(timeout).ok()
    }

    fn backend(&self) -> Backend {
        Backend::Tcp
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Best-effort graceful teardown so peer readers exit without an
        // error path; process exit would close the sockets anyway.
        for (p, w) in self.writers.iter().enumerate() {
            if let Some(stream) = w {
                let bye = Frame::control(FrameKind::Shutdown, 0, p as u32);
                let _ = stream.lock().write_all(&bye.encode());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mp-tcp-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    /// Both endpoints inside one process (distinct transports), loopback.
    #[test]
    fn loopback_pair_exchanges_frames() {
        let dir = tmpdir("pair");
        let d0 = dir.clone();
        let t0 = std::thread::spawn(move || TcpTransport::connect(&d0, 0, 2));
        let t1 = TcpTransport::connect(&dir, 1, 2);
        let t0 = t0.join().expect("proc 0 side connects");
        let mut f = Frame::control(FrameKind::Data, 1, 0);
        f.a = 42;
        f.payload = (0..100_000).map(|i| i as u8).collect();
        t0.send(1, &f);
        let got = t1.recv(Duration::from_secs(10)).expect("frame arrives");
        assert_eq!(got, f);
        // And the reverse direction over the same connection.
        let mut g = Frame::control(FrameKind::Data, 1, 1);
        g.b = 7;
        t1.send(0, &g);
        assert_eq!(t0.recv(Duration::from_secs(10)).expect("reply"), g);
        assert!(t0.recv(Duration::from_millis(5)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
