//! Cheaply-cloneable message payloads.
//!
//! A [`Payload`] is a view into reference-counted bytes: cloning it (or
//! taking a sub-[`slice`](Payload::slice)) bumps a refcount instead of
//! copying data. This is what lets collective fan-out — a binomial
//! broadcast sending the same buffer to every child, a scatter splitting
//! one buffer into per-subtree ranges — deliver to any number of peers
//! with zero per-edge payload copies. Ownership is copy-on-write:
//! [`into_vec`](Payload::into_vec) hands the underlying allocation back
//! without copying when this view is the only holder and covers the whole
//! buffer, and degrades to a copy otherwise.

use std::ops::Deref;
use std::sync::Arc;

/// A shared, sliceable byte payload (see the module docs).
#[derive(Clone, Debug)]
pub(crate) struct Payload {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Payload {
    /// Wraps an owned byte vector without copying it.
    pub fn from_vec(buf: Vec<u8>) -> Payload {
        let len = buf.len();
        Payload {
            buf: Arc::new(buf),
            off: 0,
            len,
        }
    }

    /// The viewed bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// A zero-copy sub-view of this payload (`range` is relative to the
    /// view, not the underlying buffer).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Payload {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "payload slice {range:?} out of bounds (len {})",
            self.len
        );
        Payload {
            buf: Arc::clone(&self.buf),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Recovers the owned vector. Zero-copy when this is the sole holder
    /// of the allocation and the view covers all of it (the common case
    /// for point-to-point traffic); otherwise copies the viewed bytes.
    pub fn into_vec(self) -> Vec<u8> {
        if self.off == 0 {
            match Arc::try_unwrap(self.buf) {
                Ok(v) if v.len() == self.len => return v,
                Ok(v) => return v[..self.len].to_vec(),
                Err(arc) => return arc[..self.len].to_vec(),
            }
        }
        self.as_slice().to_vec()
    }

    /// Like [`into_vec`](Payload::into_vec), but only when zero-copy is
    /// possible; used to recycle rendezvous buffers without ever paying a
    /// copy for the privilege.
    pub fn try_into_unique_vec(self) -> Option<Vec<u8>> {
        if self.off != 0 {
            return None;
        }
        match Arc::try_unwrap(self.buf) {
            Ok(v) if v.len() == self.len => Some(v),
            _ => None,
        }
    }
}

impl Deref for Payload {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(buf: Vec<u8>) -> Payload {
        Payload::from_vec(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let p = Payload::from_vec(vec![1, 2, 3, 4]);
        let q = p.clone();
        assert_eq!(p.as_slice(), q.as_slice());
        assert!(Arc::ptr_eq(&p.buf, &q.buf));
    }

    #[test]
    fn slice_is_a_view() {
        let p = Payload::from_vec(vec![10, 11, 12, 13, 14]);
        let s = p.slice(1..4);
        assert_eq!(s.as_slice(), &[11, 12, 13]);
        let ss = s.slice(2..3);
        assert_eq!(ss.as_slice(), &[13]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn into_vec_is_zero_copy_when_unique() {
        let v = vec![7u8; 32];
        let addr = v.as_ptr() as usize;
        let p = Payload::from_vec(v);
        let back = p.into_vec();
        assert_eq!(back.as_ptr() as usize, addr, "unique full view must move");
        assert_eq!(back, vec![7u8; 32]);
    }

    #[test]
    fn into_vec_copies_when_shared_or_partial() {
        let p = Payload::from_vec(vec![1, 2, 3, 4]);
        let q = p.clone();
        assert_eq!(q.into_vec(), vec![1, 2, 3, 4]); // shared -> copy
        assert_eq!(p.slice(1..3).into_vec(), vec![2, 3]); // partial -> copy
    }

    #[test]
    fn try_into_unique_vec() {
        let p = Payload::from_vec(vec![5, 6]);
        let q = p.clone();
        assert!(q.try_into_unique_vec().is_none());
        assert_eq!(p.try_into_unique_vec(), Some(vec![5, 6]));
        let r = Payload::from_vec(vec![1, 2, 3]);
        assert!(r.slice(0..2).try_into_unique_vec().is_none());
    }

    #[test]
    fn empty_payload() {
        let p = Payload::from_vec(Vec::new());
        assert_eq!(p.len(), 0);
        assert!(p.as_slice().is_empty());
        assert!(p.slice(0..0).into_vec().is_empty());
    }
}
