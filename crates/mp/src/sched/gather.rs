//! Schedule generators for [`crate::coll::gather`].

use simnet::{Round, Schedule, Transfer};

use crate::coll::unvrank;

/// Linear gather: every non-root rank sends its block straight to the root.
pub fn linear(n: usize, root: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n > 1 {
        s.push(Round::of(
            (0..n)
                .filter(|&r| r != root)
                .map(|r| Transfer {
                    src: r,
                    dst: root,
                    bytes: block_bytes,
                })
                .collect(),
        ));
    }
    s
}

/// Binomial-tree gather: the halving tree run upwards — deepest level
/// first, each child forwarding its whole contiguous subtree range.
pub fn binomial(n: usize, root: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    for level in super::halving_bfs(n).iter().rev() {
        s.push(Round::of(
            level
                .iter()
                .map(|(holder, child, range)| Transfer {
                    src: unvrank(*child, root, n),
                    dst: unvrank(*holder, root, n),
                    bytes: (range.end - range.start) as u64 * block_bytes,
                })
                .collect(),
        ));
    }
    s
}

/// Mirrors [`crate::coll::gather::auto`] (linear for n <= 2, else binomial).
pub fn auto(n: usize, root: usize, block_bytes: u64) -> Schedule {
    if n <= 2 {
        linear(n, root, block_bytes)
    } else {
        binomial(n, root, block_bytes)
    }
}

#[cfg(test)]
fn scatter_schedule_reversed(n: usize, root: usize, block_bytes: u64) -> simnet::Schedule {
    let fwd = super::scatter::binomial(n, root, block_bytes);
    let mut s = simnet::Schedule::new(n);
    for round in fwd.rounds.iter().rev() {
        s.push(simnet::Round::of(
            round
                .transfers
                .iter()
                .map(|t| simnet::Transfer {
                    src: t.dst,
                    dst: t.src,
                    bytes: t.bytes,
                })
                .collect(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::runtime::run_traced;

    #[test]
    fn binomial_matches_real_execution() {
        for n in [1, 2, 3, 5, 8, 11] {
            for root in [0, n - 1] {
                let (_, trace) = run_traced(n, |comm| {
                    let send = vec![comm.rank() as u64; 3];
                    let mut recv = (comm.rank() == root).then(|| vec![0u64; 3 * n]);
                    coll::gather::binomial(comm, &send, recv.as_deref_mut(), root);
                });
                assert_trace_matches(trace, &super::binomial(n, root, 24));
            }
        }
    }

    #[test]
    fn linear_matches_real_execution() {
        let (_, trace) = run_traced(5, |comm| {
            let send = vec![comm.rank() as u64; 2];
            let mut recv = (comm.rank() == 1).then(|| vec![0u64; 10]);
            coll::gather::linear(comm, &send, recv.as_deref_mut(), 1);
        });
        assert_trace_matches(trace, &super::linear(5, 1, 16));
    }

    #[test]
    fn gather_is_scatter_reversed() {
        let g = super::binomial(13, 4, 8);
        let sc = super::scatter_schedule_reversed(13, 4, 8);
        assert_eq!(g.transfer_multiset(), sc.transfer_multiset());
    }
}
