//! Schedule generators for [`crate::coll::barrier`].

use simnet::{Round, Schedule, Transfer};

/// Dissemination barrier: round `k` signals at distance `2^k` around the
/// ring with zero-byte messages.
pub fn dissemination(n: usize) -> Schedule {
    let mut s = Schedule::new(n);
    if n == 1 {
        return s;
    }
    let mut k = 1;
    while k < n {
        s.push(Round::of(
            (0..n)
                .map(|i| Transfer {
                    src: i,
                    dst: (i + k) % n,
                    bytes: 0,
                })
                .collect(),
        ));
        k <<= 1;
    }
    s
}

/// Tree barrier: binomial fan-in to rank 0, then binomial fan-out.
pub fn tree(n: usize) -> Schedule {
    let mut s = Schedule::new(n);
    if n == 1 {
        return s;
    }
    let rounds = super::binomial_rounds(n);
    for round in rounds.iter().rev() {
        s.push(Round::of(
            round
                .iter()
                .map(|&(parent, child)| Transfer {
                    src: child,
                    dst: parent,
                    bytes: 0,
                })
                .collect(),
        ));
    }
    for round in &rounds {
        s.push(Round::of(
            round
                .iter()
                .map(|&(parent, child)| Transfer {
                    src: parent,
                    dst: child,
                    bytes: 0,
                })
                .collect(),
        ));
    }
    s
}

/// Mirrors [`crate::coll::barrier::auto`] (dissemination).
pub fn auto(n: usize) -> Schedule {
    dissemination(n)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::runtime::run_traced;

    #[test]
    fn dissemination_matches_real_execution() {
        for n in [1, 2, 3, 5, 8, 13] {
            let (_, trace) = run_traced(n, coll::barrier::dissemination);
            assert_trace_matches(trace, &super::dissemination(n));
        }
    }

    #[test]
    fn tree_matches_real_execution() {
        for n in [1, 2, 3, 5, 8, 13] {
            let (_, trace) = run_traced(n, coll::barrier::tree);
            assert_trace_matches(trace, &super::tree(n));
        }
    }

    #[test]
    fn dissemination_round_count() {
        assert_eq!(super::dissemination(1).num_rounds(), 0);
        assert_eq!(super::dissemination(8).num_rounds(), 3);
        assert_eq!(super::dissemination(9).num_rounds(), 4);
    }

    #[test]
    fn tree_has_twice_the_rounds_but_half_the_messages() {
        let d = super::dissemination(16);
        let t = super::tree(16);
        assert_eq!(t.num_rounds(), 2 * d.num_rounds());
        assert!(t.total_messages() < d.total_messages());
    }
}
