//! Schedule generators for [`crate::coll::reduce`].

use simnet::{LocalWork, Round, Schedule, Transfer};

use crate::coll::{unvrank, LONG_MSG_THRESHOLD};

/// Binomial-tree reduce of `bytes` to `root`: the broadcast tree run
/// upwards, folding at every parent.
pub fn binomial(n: usize, root: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    for round in super::binomial_rounds(n).iter().rev() {
        s.push(Round {
            transfers: round
                .iter()
                .map(|&(parent, child)| Transfer {
                    src: unvrank(child, root, n),
                    dst: unvrank(parent, root, n),
                    bytes,
                })
                .collect(),
            work: round
                .iter()
                .map(|&(parent, _)| LocalWork {
                    rank: unvrank(parent, root, n),
                    bytes,
                })
                .collect(),
        });
    }
    s
}

/// Rabenseifner reduce (power-of-two groups, divisible vectors):
/// recursive-halving reduce-scatter, then binomial gather of the slices.
pub fn rabenseifner(n: usize, root: usize, bytes: u64) -> Schedule {
    assert!(n.is_power_of_two(), "rabenseifner reduce needs 2^k ranks");
    let mut s = Schedule::new(n);
    if n == 1 {
        return s;
    }

    // Phase 1: recursive halving, largest distance first.
    let mut group = n as u64;
    let mut chunk = bytes;
    while group > 1 {
        chunk /= 2;
        let half = (group / 2) as usize;
        s.push(Round {
            transfers: (0..n)
                .map(|v| {
                    let in_lower = v & half == 0;
                    let partner = if in_lower { v + half } else { v - half };
                    Transfer {
                        src: unvrank(v, root, n),
                        dst: unvrank(partner, root, n),
                        bytes: chunk,
                    }
                })
                .collect(),
            work: (0..n)
                .map(|v| LocalWork {
                    rank: unvrank(v, root, n),
                    bytes: chunk,
                })
                .collect(),
        });
        group /= 2;
    }

    // Phase 2: binomial gather of the n slices to vrank 0.
    let slice = bytes / n as u64;
    for level in super::halving_bfs(n).iter().rev() {
        s.push(Round::of(
            level
                .iter()
                .map(|(holder, child, range)| Transfer {
                    src: unvrank(*child, root, n),
                    dst: unvrank(*holder, root, n),
                    bytes: (range.end - range.start) as u64 * slice,
                })
                .collect(),
        ));
    }
    s
}

/// Mirrors [`crate::coll::reduce::auto`]'s dispatch. `elem_size` is the
/// datatype width used for the divisibility check (8 for the `f64`
/// vectors the IMB benchmarks reduce).
pub fn auto(n: usize, root: usize, bytes: u64, elem_size: u64) -> Schedule {
    let elems = bytes / elem_size;
    if n.is_power_of_two()
        && n > 1
        && elems.is_multiple_of(n as u64)
        && bytes as usize >= LONG_MSG_THRESHOLD
    {
        rabenseifner(n, root, bytes)
    } else {
        binomial(n, root, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::reduce::Op;
    use crate::runtime::run_traced;

    #[test]
    fn binomial_matches_real_execution() {
        for n in [1, 2, 3, 5, 8, 13] {
            for root in [0, n - 1] {
                let (_, trace) = run_traced(n, |comm| {
                    let send = vec![1.0f64; 8];
                    let mut recv = (comm.rank() == root).then(|| vec![0.0f64; 8]);
                    coll::reduce::binomial(comm, &send, recv.as_deref_mut(), root, Op::Sum);
                });
                assert_trace_matches(trace, &super::binomial(n, root, 64));
            }
        }
    }

    #[test]
    fn rabenseifner_matches_real_execution() {
        for n in [2, 4, 8, 16] {
            for root in [0, n / 3] {
                let len = 16 * n;
                let (_, trace) = run_traced(n, |comm| {
                    let send = vec![1.0f64; len];
                    let mut recv = (comm.rank() == root).then(|| vec![0.0f64; len]);
                    coll::reduce::rabenseifner(comm, &send, recv.as_deref_mut(), root, Op::Sum);
                });
                assert_trace_matches(trace, &super::rabenseifner(n, root, (len * 8) as u64));
            }
        }
    }

    #[test]
    fn auto_matches_real_dispatch() {
        for len in [8usize, 8192] {
            let (_, trace) = run_traced(8, |comm| {
                let send = vec![1.0f64; len];
                let mut recv = (comm.rank() == 0).then(|| vec![0.0f64; len]);
                coll::reduce::auto(comm, &send, recv.as_deref_mut(), 0, Op::Sum);
            });
            assert_trace_matches(trace, &super::auto(8, 0, (len * 8) as u64, 8));
        }
    }

    #[test]
    fn rabenseifner_has_shorter_critical_path_for_large_vectors() {
        // Rabenseifner's win is the per-rank critical path (~2*bytes vs
        // log2(n)*bytes for the binomial tree), not total volume.
        let critical_path_bytes = |s: &simnet::Schedule| -> u64 {
            s.rounds
                .iter()
                .map(|r| r.transfers.iter().map(|t| t.bytes).max().unwrap_or(0))
                .sum()
        };
        let n = 16;
        let bytes = 1 << 20;
        let bin = critical_path_bytes(&super::binomial(n, 0, bytes));
        let rab = critical_path_bytes(&super::rabenseifner(n, 0, bytes));
        assert!(
            rab < bin / 2,
            "rabenseifner critical path {rab} should beat binomial {bin}"
        );
    }
}
