//! Schedule generators for [`crate::coll::allgather`].

use simnet::{Round, Schedule, Transfer};

use crate::coll::LONG_MSG_THRESHOLD;

/// Ring allgather: `n-1` rounds; every rank passes one block of
/// `block_bytes` to its right neighbour each round.
pub fn ring(n: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    for _ in 0..n.saturating_sub(1) {
        s.push(Round::of(
            (0..n)
                .map(|i| Transfer {
                    src: i,
                    dst: (i + 1) % n,
                    bytes: block_bytes,
                })
                .collect(),
        ));
    }
    s
}

/// Recursive-doubling allgather (power-of-two groups): round `k` exchanges
/// `2^k` blocks with the partner at XOR-distance `2^k`.
pub fn recursive_doubling(n: usize, block_bytes: u64) -> Schedule {
    assert!(n.is_power_of_two(), "recursive doubling needs 2^k ranks");
    let mut s = Schedule::new(n);
    let mut span = 1u64;
    while (span as usize) < n {
        s.push(Round::of(
            (0..n)
                .map(|i| Transfer {
                    src: i,
                    dst: i ^ span as usize,
                    bytes: span * block_bytes,
                })
                .collect(),
        ));
        span <<= 1;
    }
    s
}

/// Mirrors [`crate::coll::allgather::auto`]'s dispatch.
pub fn auto(n: usize, block_bytes: u64) -> Schedule {
    if n.is_power_of_two() && (block_bytes as usize) * n < LONG_MSG_THRESHOLD {
        recursive_doubling(n, block_bytes)
    } else {
        ring(n, block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::runtime::run_traced;

    #[test]
    fn ring_matches_real_execution() {
        for n in [1, 2, 3, 5, 8] {
            let (_, trace) = run_traced(n, |comm| {
                let send = vec![comm.rank() as u64; 4];
                let mut recv = vec![0u64; 4 * n];
                coll::allgather::ring(comm, &send, &mut recv);
            });
            assert_trace_matches(trace, &super::ring(n, 32));
        }
    }

    #[test]
    fn recursive_doubling_matches_real_execution() {
        for n in [1, 2, 4, 8, 16] {
            let (_, trace) = run_traced(n, |comm| {
                let send = vec![comm.rank() as u64; 4];
                let mut recv = vec![0u64; 4 * n];
                coll::allgather::recursive_doubling(comm, &send, &mut recv);
            });
            assert_trace_matches(trace, &super::recursive_doubling(n, 32));
        }
    }

    #[test]
    fn auto_matches_real_dispatch() {
        for (n, len) in [(8usize, 2usize), (8, 4096), (6, 2)] {
            let (_, trace) = run_traced(n, |comm| {
                let send = vec![comm.rank() as u64; len];
                let mut recv = vec![0u64; len * n];
                coll::allgather::auto(comm, &send, &mut recv);
            });
            assert_trace_matches(trace, &super::auto(n, (len * 8) as u64));
        }
    }

    #[test]
    fn both_algorithms_move_the_same_volume() {
        // (n-1) blocks arrive at every rank regardless of algorithm.
        let n = 16;
        let b = 100;
        assert_eq!(
            super::ring(n, b).total_bytes(),
            super::recursive_doubling(n, b).total_bytes()
        );
        assert_eq!(super::ring(n, b).total_bytes(), (n * (n - 1)) as u64 * b);
    }
}
