//! Schedules for the IMB point-to-point and parallel-transfer patterns
//! (single iteration each).

use simnet::{Round, Schedule, Transfer};

/// IMB PingPong: rank 0 sends `bytes` to rank 1, which sends them back.
pub fn ping_pong(bytes: u64) -> Schedule {
    let mut s = Schedule::new(2);
    s.push(Round::of(vec![Transfer {
        src: 0,
        dst: 1,
        bytes,
    }]));
    s.push(Round::of(vec![Transfer {
        src: 1,
        dst: 0,
        bytes,
    }]));
    s
}

/// IMB PingPing: both ranks send simultaneously — each message is
/// "obstructed by oncoming messages".
pub fn ping_ping(bytes: u64) -> Schedule {
    let mut s = Schedule::new(2);
    s.push(Round::of(vec![
        Transfer {
            src: 0,
            dst: 1,
            bytes,
        },
        Transfer {
            src: 1,
            dst: 0,
            bytes,
        },
    ]));
    s
}

/// IMB Sendrecv: a periodic chain — every rank sends `bytes` right and
/// receives from the left.
pub fn sendrecv(n: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n > 1 {
        s.push(Round::of(
            (0..n)
                .map(|i| Transfer {
                    src: i,
                    dst: (i + 1) % n,
                    bytes,
                })
                .collect(),
        ));
    }
    s
}

/// IMB Exchange: every rank exchanges `bytes` with both chain neighbours
/// (the boundary-exchange pattern of mesh-based CFD codes).
pub fn exchange(n: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n > 1 {
        s.push(Round::of(
            (0..n)
                .flat_map(|i| {
                    [
                        Transfer {
                            src: i,
                            dst: (i + 1) % n,
                            bytes,
                        },
                        Transfer {
                            src: i,
                            dst: (i + n - 1) % n,
                            bytes,
                        },
                    ]
                })
                .collect(),
        ));
    }
    s
}

/// Random-ring pattern (HPCC random-ring bandwidth/latency): each rank
/// sends to its successor in the given ring permutation and receives from
/// its predecessor; both directions are active, as in `b_eff`.
pub fn random_ring(perm: &[usize], bytes: u64) -> Schedule {
    let n = perm.len();
    let mut s = Schedule::new(n);
    if n > 1 {
        s.push(Round::of(
            (0..n)
                .flat_map(|i| {
                    let a = perm[i];
                    let b = perm[(i + 1) % n];
                    [
                        Transfer {
                            src: a,
                            dst: b,
                            bytes,
                        },
                        Transfer {
                            src: b,
                            dst: a,
                            bytes,
                        },
                    ]
                })
                .collect(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_is_two_dependent_rounds() {
        let s = ping_pong(1024);
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.total_bytes(), 2048);
        s.validate().unwrap();
    }

    #[test]
    fn ping_ping_is_one_concurrent_round() {
        let s = ping_ping(1024);
        assert_eq!(s.num_rounds(), 1);
        assert_eq!(s.total_messages(), 2);
    }

    #[test]
    fn sendrecv_chain_volume() {
        let s = sendrecv(8, 100);
        assert_eq!(s.total_messages(), 8);
        assert_eq!(s.total_bytes(), 800);
        s.validate().unwrap();
        assert_eq!(sendrecv(1, 100).total_messages(), 0);
    }

    #[test]
    fn exchange_doubles_sendrecv() {
        let s = exchange(8, 100);
        assert_eq!(s.total_bytes(), 2 * sendrecv(8, 100).total_bytes());
        s.validate().unwrap();
    }

    #[test]
    fn random_ring_covers_every_rank_twice() {
        let perm = vec![2, 0, 3, 1];
        let s = random_ring(&perm, 10);
        s.validate().unwrap();
        assert_eq!(s.total_messages(), 8);
        let mut sends = vec![0usize; 4];
        for t in &s.rounds[0].transfers {
            sends[t.src] += 1;
        }
        assert_eq!(sends, vec![2; 4], "each rank sends once per direction");
    }
}
