//! Schedule generators: the communication pattern of every collective
//! algorithm as a [`simnet::Schedule`].
//!
//! Each generator mirrors one real implementation in [`crate::coll`] —
//! same rounds, same peers, same byte counts — so the fabric simulator
//! prices exactly the pattern the runtime executes. The `auto` generators
//! replicate the real dispatchers' size/shape heuristics byte-for-byte.
//!
//! Tests in this module family assert *trace equivalence*: a traced real
//! execution ([`crate::run_traced`]) moves exactly the (src, dst, bytes)
//! multiset the generator predicts.

pub mod allgather;
pub mod allgatherv;
pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod gather;
pub mod p2p;
pub mod reduce;
pub mod reduce_scatter;
pub mod scan;
pub mod scatter;

use std::ops::Range;

/// BFS levels of the recursive-halving block tree over `[0, n)`:
/// `levels[d]` lists `(holder, child, child_range)` splits at depth `d`.
/// Mirrors [`crate::coll::halving_tree`], which walks the same tree from a
/// single rank's perspective.
#[allow(clippy::single_range_in_vec_init)] // a worklist seeded with one range
pub(crate) fn halving_bfs(n: usize) -> Vec<Vec<(usize, usize, Range<usize>)>> {
    let mut levels = Vec::new();
    let mut active: Vec<Range<usize>> = vec![0..n];
    loop {
        let mut level = Vec::new();
        let mut next = Vec::new();
        for r in &active {
            if r.end - r.start > 1 {
                let half = (r.end - r.start).next_power_of_two() / 2;
                let mid = r.start + half;
                level.push((r.start, mid, mid..r.end));
                next.push(r.start..mid);
                next.push(mid..r.end);
            }
        }
        if level.is_empty() {
            break;
        }
        levels.push(level);
        active = next;
    }
    levels
}

/// Rounds of the binomial broadcast tree over virtual ranks: round `k`
/// contains an edge `(v, v + 2^k)` for every `v < 2^k` with `v + 2^k < n`.
pub(crate) fn binomial_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    let mut rounds = Vec::new();
    let mut k = 0;
    while (1usize << k) < n {
        let step = 1usize << k;
        let round: Vec<(usize, usize)> = (0..step)
            .filter(|v| v + step < n)
            .map(|v| (v, v + step))
            .collect();
        rounds.push(round);
        k += 1;
    }
    rounds
}

#[cfg(test)]
pub(crate) mod testutil {
    use simnet::{Schedule, Transfer};

    /// Asserts that a traced execution and a generated schedule move the
    /// same multiset of (src, dst, bytes) messages.
    pub fn assert_trace_matches(trace: Vec<Transfer>, schedule: &Schedule) {
        schedule.validate().expect("generated schedule is invalid");
        let mut traced = trace;
        traced.sort_unstable();
        assert_eq!(
            traced,
            schedule.transfer_multiset(),
            "traced execution and schedule generator disagree"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_bfs_covers_all_ranks() {
        for n in 1..40usize {
            let levels = halving_bfs(n);
            let mut received = vec![false; n];
            received[0] = true;
            for level in &levels {
                for (holder, child, range) in level {
                    assert!(received[*holder], "holder must already have data");
                    assert!(!received[*child], "child receives once");
                    assert_eq!(range.start, *child);
                    received[*child] = true;
                }
            }
            assert!(received.iter().all(|&r| r), "n={n}");
        }
    }

    #[test]
    fn binomial_rounds_cover_all_ranks() {
        for n in 1..40usize {
            let rounds = binomial_rounds(n);
            let mut have = vec![false; n];
            have[0] = true;
            for round in &rounds {
                // All sends in a round come from ranks that already hold data.
                for &(src, dst) in round {
                    assert!(have[src], "n={n}: rank {src} sent before receiving");
                    assert!(!have[dst]);
                }
                for &(_, dst) in round {
                    have[dst] = true;
                }
            }
            assert!(have.iter().all(|&h| h), "n={n}");
        }
    }

    #[test]
    fn binomial_round_count_is_log2() {
        assert_eq!(binomial_rounds(1).len(), 0);
        assert_eq!(binomial_rounds(2).len(), 1);
        assert_eq!(binomial_rounds(8).len(), 3);
        assert_eq!(binomial_rounds(9).len(), 4);
    }
}
