//! Schedule generators for [`crate::coll::alltoall`].

use simnet::{Round, Schedule, Transfer};

/// Pairwise-exchange alltoall: `n-1` rounds; XOR pairing on power-of-two
/// groups, rotation otherwise.
pub fn pairwise(n: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    for step in 1..n {
        s.push(Round::of(
            (0..n)
                .map(|i| {
                    let dst = if n.is_power_of_two() {
                        i ^ step
                    } else {
                        (i + step) % n
                    };
                    Transfer {
                        src: i,
                        dst,
                        bytes: block_bytes,
                    }
                })
                .collect(),
        ));
    }
    s
}

/// Bruck alltoall: `ceil(log2 n)` rounds; round `k` ships every slot with
/// bit `k` set (about half the payload) a distance `2^k` around the ring.
pub fn bruck(n: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    let mut step = 1usize;
    while step < n {
        let moving = (0..n).filter(|i| i & step != 0).count() as u64;
        s.push(Round::of(
            (0..n)
                .map(|i| Transfer {
                    src: i,
                    dst: (i + step) % n,
                    bytes: moving * block_bytes,
                })
                .collect(),
        ));
        step <<= 1;
    }
    s
}

/// Linear alltoall: all `n(n-1)` direct messages in one eager round.
pub fn linear(n: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n > 1 {
        s.push(Round::of(
            (0..n)
                .flat_map(|i| {
                    (1..n).map(move |off| Transfer {
                        src: i,
                        dst: (i + off) % n,
                        bytes: block_bytes,
                    })
                })
                .collect(),
        ));
    }
    s
}

/// Mirrors [`crate::coll::alltoall::auto`]'s dispatch.
pub fn auto(n: usize, block_bytes: u64) -> Schedule {
    if n == 1 {
        Schedule::new(1)
    } else if block_bytes < 256 && n > 8 {
        bruck(n, block_bytes)
    } else {
        pairwise(n, block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::runtime::run_traced;

    fn trace_of(
        n: usize,
        block: usize,
        algo: fn(&crate::Comm, &[u64], &mut [u64]),
    ) -> Vec<simnet::Transfer> {
        let (_, trace) = run_traced(n, |comm| {
            let send = vec![comm.rank() as u64; n * block];
            let mut recv = vec![0u64; n * block];
            algo(comm, &send, &mut recv);
        });
        trace
    }

    #[test]
    fn pairwise_matches_real_execution() {
        for n in [1, 2, 3, 4, 7, 8] {
            let trace = trace_of(n, 3, coll::alltoall::pairwise::<u64>);
            assert_trace_matches(trace, &super::pairwise(n, 24));
        }
    }

    #[test]
    fn bruck_matches_real_execution() {
        for n in [1, 2, 3, 5, 8, 11] {
            let trace = trace_of(n, 2, coll::alltoall::bruck::<u64>);
            assert_trace_matches(trace, &super::bruck(n, 16));
        }
    }

    #[test]
    fn linear_matches_real_execution() {
        let trace = trace_of(6, 2, coll::alltoall::linear::<u64>);
        assert_trace_matches(trace, &super::linear(6, 16));
    }

    #[test]
    fn auto_matches_real_dispatch() {
        for (n, block) in [(12usize, 1usize), (12, 512)] {
            let trace = trace_of(n, block, coll::alltoall::auto::<u64>);
            assert_trace_matches(trace, &super::auto(n, (block * 8) as u64));
        }
    }

    #[test]
    fn pairwise_moves_every_block_once() {
        let s = super::pairwise(8, 10);
        assert_eq!(s.total_messages(), 8 * 7);
        assert_eq!(s.total_bytes(), 8 * 7 * 10);
    }

    #[test]
    fn bruck_fewer_messages_more_bytes() {
        let p = super::pairwise(16, 10);
        let b = super::bruck(16, 10);
        assert!(b.total_messages() < p.total_messages());
        assert!(b.total_bytes() > p.total_bytes());
        assert_eq!(b.num_rounds(), 4);
    }
}
