//! Schedule generators for [`crate::coll::reduce_scatter`].

use simnet::{LocalWork, Round, Schedule, Transfer};

/// Pairwise reduce-scatter with per-rank slice sizes in bytes: round `s`
/// ships each rank's operand for `(rank + s) mod n` and folds the arriving
/// operand for the receiver's own slice.
pub fn pairwise(counts_bytes: &[u64]) -> Schedule {
    let n = counts_bytes.len();
    let mut s = Schedule::new(n);
    for step in 1..n {
        s.push(Round {
            transfers: (0..n)
                .map(|i| {
                    let dst = (i + step) % n;
                    Transfer {
                        src: i,
                        dst,
                        bytes: counts_bytes[dst],
                    }
                })
                .collect(),
            work: (0..n)
                .map(|i| LocalWork {
                    rank: i,
                    bytes: counts_bytes[i],
                })
                .collect(),
        });
    }
    s
}

/// Recursive-halving reduce-scatter of `bytes` total (power-of-two groups,
/// equal slices): `log2 n` rounds halving the active vector.
pub fn recursive_halving(n: usize, bytes: u64) -> Schedule {
    assert!(n.is_power_of_two(), "recursive halving needs 2^k ranks");
    let mut s = Schedule::new(n);
    let mut group = n;
    let mut chunk = bytes;
    while group > 1 {
        chunk /= 2;
        let half = group / 2;
        s.push(Round {
            transfers: (0..n)
                .map(|v| {
                    let partner = if v & half == 0 { v + half } else { v - half };
                    Transfer {
                        src: v,
                        dst: partner,
                        bytes: chunk,
                    }
                })
                .collect(),
            work: (0..n)
                .map(|v| LocalWork {
                    rank: v,
                    bytes: chunk,
                })
                .collect(),
        });
        group /= 2;
    }
    s
}

/// Mirrors [`crate::coll::reduce_scatter::block_auto`]'s dispatch for equal
/// blocks of `block_bytes` (`elem_size` as in [`super::reduce::auto`]).
pub fn block_auto(n: usize, block_bytes: u64, elem_size: u64) -> Schedule {
    let total = block_bytes * n as u64;
    if n.is_power_of_two() && (total / elem_size).is_multiple_of(n as u64) {
        recursive_halving(n, total)
    } else {
        pairwise(&vec![block_bytes; n])
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::reduce::Op;
    use crate::runtime::run_traced;

    #[test]
    fn pairwise_matches_real_execution() {
        for counts in [vec![3usize; 4], vec![1, 4, 0, 2], vec![2, 2, 5]] {
            let n = counts.len();
            let total: usize = counts.iter().sum();
            let counts2 = counts.clone();
            let (_, trace) = run_traced(n, |comm| {
                let send = vec![1.0f64; total];
                let mut recv = vec![0.0f64; counts2[comm.rank()]];
                coll::reduce_scatter::pairwise(comm, &send, &mut recv, &counts2, Op::Sum);
            });
            let cb: Vec<u64> = counts.iter().map(|&c| (c * 8) as u64).collect();
            assert_trace_matches(trace, &super::pairwise(&cb));
        }
    }

    #[test]
    fn recursive_halving_matches_real_execution() {
        for n in [1, 2, 4, 8, 16] {
            let slice = 4;
            let (_, trace) = run_traced(n, |comm| {
                let send = vec![1.0f64; n * slice];
                let mut recv = vec![0.0f64; slice];
                coll::reduce_scatter::recursive_halving(comm, &send, &mut recv, Op::Sum);
            });
            assert_trace_matches(trace, &super::recursive_halving(n, (n * slice * 8) as u64));
        }
    }

    #[test]
    fn block_auto_matches_real_dispatch() {
        for n in [8usize, 6] {
            let slice = 4;
            let (_, trace) = run_traced(n, |comm| {
                let send = vec![1.0f64; n * slice];
                let mut recv = vec![0.0f64; slice];
                coll::reduce_scatter::block_auto(comm, &send, &mut recv, Op::Sum);
            });
            assert_trace_matches(trace, &super::block_auto(n, (slice * 8) as u64, 8));
        }
    }

    #[test]
    fn halving_and_pairwise_volumes() {
        let n = 8;
        let slice = 1024u64;
        let h = super::recursive_halving(n, slice * n as u64);
        let p = super::pairwise(&vec![slice; n]);
        // Pairwise: each rank sends (n-1) slices; halving: slightly less
        // volume ((1 - 1/n) * total per rank too) — equal here.
        assert_eq!(p.total_bytes(), (n * (n - 1)) as u64 * slice);
        assert_eq!(h.total_bytes(), p.total_bytes());
        assert!(h.num_rounds() < p.num_rounds());
    }
}
