//! Schedule generators for [`crate::coll::scan`].

use simnet::{LocalWork, Round, Schedule, Transfer};

/// Linear scan: a serial pipeline along rank order.
pub fn linear(n: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    for i in 0..n.saturating_sub(1) {
        s.push(Round {
            transfers: vec![Transfer {
                src: i,
                dst: i + 1,
                bytes,
            }],
            work: vec![LocalWork { rank: i + 1, bytes }],
        });
    }
    s
}

/// Recursive-doubling scan: round `d` ships partials a distance `2^d`;
/// receivers fold into both their result and their partial (2x work).
pub fn recursive_doubling(n: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    let mut d = 1;
    while d < n {
        s.push(Round {
            transfers: (0..n - d)
                .map(|i| Transfer {
                    src: i,
                    dst: i + d,
                    bytes,
                })
                .collect(),
            work: (d..n)
                .map(|i| LocalWork {
                    rank: i,
                    bytes: 2 * bytes,
                })
                .collect(),
        });
        d <<= 1;
    }
    s
}

/// Mirrors [`crate::coll::scan::auto`] (recursive doubling).
pub fn auto(n: usize, bytes: u64) -> Schedule {
    recursive_doubling(n, bytes)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::reduce::Op;
    use crate::runtime::run_traced;

    #[test]
    fn linear_matches_real_execution() {
        for n in [1, 2, 5] {
            let (_, trace) = run_traced(n, |comm| {
                let mut buf = vec![1.0f64; 4];
                coll::scan::linear(comm, &mut buf, Op::Sum);
            });
            assert_trace_matches(trace, &super::linear(n, 32));
        }
    }

    #[test]
    fn recursive_doubling_matches_real_execution() {
        for n in [1, 2, 3, 5, 8, 13] {
            let (_, trace) = run_traced(n, |comm| {
                let mut buf = vec![1.0f64; 4];
                coll::scan::recursive_doubling(comm, &mut buf, Op::Sum);
            });
            assert_trace_matches(trace, &super::recursive_doubling(n, 32));
        }
    }

    #[test]
    fn round_counts() {
        assert_eq!(super::linear(8, 1).num_rounds(), 7);
        assert_eq!(super::recursive_doubling(8, 1).num_rounds(), 3);
    }
}
