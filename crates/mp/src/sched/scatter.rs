//! Schedule generators for [`crate::coll::scatter`].

use simnet::{Round, Schedule, Transfer};

use crate::coll::unvrank;

/// Linear scatter: the root sends every non-root rank its block in one
/// conceptual round (all sends are eager).
pub fn linear(n: usize, root: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n > 1 {
        s.push(Round::of(
            (0..n)
                .filter(|&r| r != root)
                .map(|r| Transfer {
                    src: root,
                    dst: r,
                    bytes: block_bytes,
                })
                .collect(),
        ));
    }
    s
}

/// Binomial-tree scatter down the halving tree: each split forwards the
/// child's whole subtree range.
pub fn binomial(n: usize, root: usize, block_bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    for level in super::halving_bfs(n) {
        s.push(Round::of(
            level
                .iter()
                .map(|(holder, child, range)| Transfer {
                    src: unvrank(*holder, root, n),
                    dst: unvrank(*child, root, n),
                    bytes: (range.end - range.start) as u64 * block_bytes,
                })
                .collect(),
        ));
    }
    s
}

/// Mirrors [`crate::coll::scatter::auto`] (linear for n <= 2, else binomial).
pub fn auto(n: usize, root: usize, block_bytes: u64) -> Schedule {
    if n <= 2 {
        linear(n, root, block_bytes)
    } else {
        binomial(n, root, block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::runtime::run_traced;

    #[test]
    fn binomial_matches_real_execution() {
        for n in [1, 2, 3, 5, 8, 11] {
            for root in [0, n - 1] {
                let (_, trace) = run_traced(n, |comm| {
                    let send: Option<Vec<u64>> = (comm.rank() == root).then(|| vec![7u64; 3 * n]);
                    let mut recv = vec![0u64; 3];
                    coll::scatter::binomial(comm, send.as_deref(), &mut recv, root);
                });
                assert_trace_matches(trace, &super::binomial(n, root, 24));
            }
        }
    }

    #[test]
    fn linear_matches_real_execution() {
        let (_, trace) = run_traced(5, |comm| {
            let send: Option<Vec<u64>> = (comm.rank() == 2).then(|| vec![7u64; 10]);
            let mut recv = vec![0u64; 2];
            coll::scatter::linear(comm, send.as_deref(), &mut recv, 2);
        });
        assert_trace_matches(trace, &super::linear(5, 2, 16));
    }

    #[test]
    fn binomial_total_volume() {
        // Every rank's block crosses each tree level above it exactly once:
        // total = sum over non-root ranks of (depth-weighted)... just check
        // the known value for n=8: 4+2+1 blocks + 2+1 + 1 = log-structured.
        let s = super::binomial(8, 0, 10);
        assert_eq!(s.num_rounds(), 3);
        assert_eq!(s.total_messages(), 7);
        assert_eq!(s.total_bytes(), (4 + 2 + 1 + 2 + 1 + 1 + 1) * 10);
    }
}
