//! Schedule generators for [`crate::coll::allreduce`].

use simnet::{LocalWork, Round, Schedule, Transfer};

use crate::coll::LONG_MSG_THRESHOLD;

/// The non-power-of-two fold parameters (mirrors the private `Fold` in the
/// real implementation).
fn fold_params(n: usize) -> (usize, usize) {
    let pow2 = if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() / 2
    };
    (pow2, n - pow2)
}

fn oldrank(newrank: usize, rem: usize) -> usize {
    if newrank < rem {
        2 * newrank + 1
    } else {
        newrank + rem
    }
}

/// Fold-in round: even ranks below `2*rem` donate their vector to their odd
/// neighbour, which folds it.
fn fold_in_round(rem: usize, bytes: u64) -> Round {
    Round {
        transfers: (0..rem)
            .map(|j| Transfer {
                src: 2 * j,
                dst: 2 * j + 1,
                bytes,
            })
            .collect(),
        work: (0..rem)
            .map(|j| LocalWork {
                rank: 2 * j + 1,
                bytes,
            })
            .collect(),
    }
}

/// Fold-out round: the odd survivors hand the result back.
fn fold_out_round(rem: usize, bytes: u64) -> Round {
    Round::of(
        (0..rem)
            .map(|j| Transfer {
                src: 2 * j + 1,
                dst: 2 * j,
                bytes,
            })
            .collect(),
    )
}

/// Recursive-doubling allreduce of `bytes`: optional fold, `log2 p` full-
/// vector exchange rounds, optional unfold.
pub fn recursive_doubling(n: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n == 1 {
        return s;
    }
    let (pow2, rem) = fold_params(n);
    if rem > 0 {
        s.push(fold_in_round(rem, bytes));
    }
    let mut span = 1;
    while span < pow2 {
        s.push(Round {
            transfers: (0..pow2)
                .map(|p| Transfer {
                    src: oldrank(p, rem),
                    dst: oldrank(p ^ span, rem),
                    bytes,
                })
                .collect(),
            work: (0..pow2)
                .map(|p| LocalWork {
                    rank: oldrank(p, rem),
                    bytes,
                })
                .collect(),
        });
        span <<= 1;
    }
    if rem > 0 {
        s.push(fold_out_round(rem, bytes));
    }
    s
}

/// Rabenseifner allreduce: optional fold, recursive-halving reduce-scatter,
/// recursive-doubling allgather, optional unfold. Bandwidth-optimal for
/// long vectors — the algorithm shape behind the paper's 1 MB Allreduce
/// measurements (Fig. 7).
pub fn rabenseifner(n: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n == 1 {
        return s;
    }
    let (pow2, rem) = fold_params(n);
    if rem > 0 {
        s.push(fold_in_round(rem, bytes));
    }

    // Reduce-scatter by recursive halving.
    let mut group = pow2;
    let mut chunk = bytes;
    while group > 1 {
        chunk /= 2;
        let half = group / 2;
        s.push(Round {
            transfers: (0..pow2)
                .map(|v| {
                    let partner = if v & half == 0 { v + half } else { v - half };
                    Transfer {
                        src: oldrank(v, rem),
                        dst: oldrank(partner, rem),
                        bytes: chunk,
                    }
                })
                .collect(),
            work: (0..pow2)
                .map(|v| LocalWork {
                    rank: oldrank(v, rem),
                    bytes: chunk,
                })
                .collect(),
        });
        group /= 2;
    }

    // Allgather by recursive doubling.
    let slice = bytes / pow2 as u64;
    let mut span = 1;
    while span < pow2 {
        s.push(Round::of(
            (0..pow2)
                .map(|v| Transfer {
                    src: oldrank(v, rem),
                    dst: oldrank(v ^ span, rem),
                    bytes: span as u64 * slice,
                })
                .collect(),
        ));
        span <<= 1;
    }

    if rem > 0 {
        s.push(fold_out_round(rem, bytes));
    }
    s
}

/// Mirrors [`crate::coll::allreduce::auto`]'s dispatch (`elem_size` as in
/// [`super::reduce::auto`]).
pub fn auto(n: usize, bytes: u64, elem_size: u64) -> Schedule {
    let (pow2, _) = fold_params(n);
    let elems = bytes / elem_size;
    if n > 1 && bytes as usize >= LONG_MSG_THRESHOLD && elems.is_multiple_of(pow2 as u64) {
        rabenseifner(n, bytes)
    } else {
        recursive_doubling(n, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::reduce::Op;
    use crate::runtime::run_traced;

    #[test]
    fn recursive_doubling_matches_real_execution() {
        for n in [1, 2, 3, 4, 5, 7, 8, 13] {
            let (_, trace) = run_traced(n, |comm| {
                let mut buf = vec![1.0f64; 10];
                coll::allreduce::recursive_doubling(comm, &mut buf, Op::Sum);
            });
            assert_trace_matches(trace, &super::recursive_doubling(n, 80));
        }
    }

    #[test]
    fn rabenseifner_matches_real_execution() {
        for n in [2, 3, 4, 5, 8, 12, 16] {
            let (_, trace) = run_traced(n, |comm| {
                let mut buf = vec![1.0f64; 240];
                coll::allreduce::rabenseifner(comm, &mut buf, Op::Sum);
            });
            assert_trace_matches(trace, &super::rabenseifner(n, 240 * 8));
        }
    }

    #[test]
    fn auto_matches_real_dispatch() {
        for len in [4usize, 8192] {
            for n in [4usize, 7] {
                let (_, trace) = run_traced(n, |comm| {
                    let mut buf = vec![1.0f64; len];
                    coll::allreduce::auto(comm, &mut buf, Op::Sum);
                });
                assert_trace_matches(trace, &super::auto(n, (len * 8) as u64, 8));
            }
        }
    }

    #[test]
    fn rabenseifner_bandwidth_advantage() {
        let n = 16;
        let bytes = 1 << 20;
        let rd = super::recursive_doubling(n, bytes);
        let rab = super::rabenseifner(n, bytes);
        // Recursive doubling: log2(n) * bytes per rank; Rabenseifner:
        // ~2 * bytes * (n-1)/n per rank.
        assert!(rab.total_bytes() * 2 < rd.total_bytes());
    }
}
