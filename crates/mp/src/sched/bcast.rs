//! Schedule generators for [`crate::coll::bcast`].

use simnet::{Round, Schedule, Transfer};

use crate::coll::{unvrank, LONG_MSG_THRESHOLD};

/// Binomial-tree broadcast of `bytes` from `root`.
pub fn binomial(n: usize, root: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    for round in super::binomial_rounds(n) {
        s.push(Round::of(
            round
                .iter()
                .map(|&(src, dst)| Transfer {
                    src: unvrank(src, root, n),
                    dst: unvrank(dst, root, n),
                    bytes,
                })
                .collect(),
        ));
    }
    s
}

/// Van de Geijn broadcast: binomial scatter (BFS levels of the halving
/// tree) followed by a ring allgather of the `n` blocks.
pub fn scatter_allgather(n: usize, root: usize, bytes: u64) -> Schedule {
    let mut s = Schedule::new(n);
    if n == 1 {
        return s;
    }
    let cut = |b: usize| -> u64 { (b as u64) * bytes / (n as u64) };

    for level in super::halving_bfs(n) {
        s.push(Round::of(
            level
                .iter()
                .map(|(holder, child, range)| Transfer {
                    src: unvrank(*holder, root, n),
                    dst: unvrank(*child, root, n),
                    bytes: cut(range.end) - cut(range.start),
                })
                .collect(),
        ));
    }

    for k in 0..n - 1 {
        s.push(Round::of(
            (0..n)
                .map(|v| {
                    let send_block = (v + n - k) % n;
                    Transfer {
                        src: unvrank(v, root, n),
                        dst: unvrank((v + 1) % n, root, n),
                        bytes: cut(send_block + 1) - cut(send_block),
                    }
                })
                .collect(),
        ));
    }
    s
}

/// Mirrors [`crate::coll::bcast::auto`]'s size dispatch.
pub fn auto(n: usize, root: usize, bytes: u64) -> Schedule {
    if bytes as usize >= LONG_MSG_THRESHOLD && n > 2 {
        scatter_allgather(n, root, bytes)
    } else {
        binomial(n, root, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::runtime::run_traced;

    #[test]
    fn binomial_matches_real_execution() {
        for n in [1, 2, 3, 5, 8] {
            for root in [0, n - 1] {
                let (_, trace) = run_traced(n, |comm| {
                    let mut buf = vec![1.0f64; 17];
                    coll::bcast::binomial(comm, &mut buf, root);
                });
                assert_trace_matches(trace, &super::binomial(n, root, 17 * 8));
            }
        }
    }

    #[test]
    fn scatter_allgather_matches_real_execution() {
        for n in [2, 3, 4, 7, 8] {
            for root in [0, n / 2] {
                let (_, trace) = run_traced(n, |comm| {
                    let mut buf = vec![1.0f64; 1000];
                    coll::bcast::scatter_allgather(comm, &mut buf, root);
                });
                assert_trace_matches(trace, &super::scatter_allgather(n, root, 8000));
            }
        }
    }

    #[test]
    fn auto_matches_real_dispatch() {
        for len in [8usize, 16384] {
            let (_, trace) = run_traced(6, |comm| {
                let mut buf = vec![1.0f64; len];
                coll::bcast::auto(comm, &mut buf, 0);
            });
            assert_trace_matches(trace, &super::auto(6, 0, (len * 8) as u64));
        }
    }

    #[test]
    fn binomial_volume_is_payload_times_edges() {
        let s = super::binomial(8, 0, 100);
        assert_eq!(s.total_messages(), 7);
        assert_eq!(s.total_bytes(), 700);
    }

    #[test]
    fn scatter_allgather_volume_is_roughly_2x_payload() {
        let s = super::scatter_allgather(8, 0, 8000);
        // Scatter moves (n-1)/n of the payload total; ring moves (n-1)x blocks.
        let per_rank_equiv = s.total_bytes() as f64 / 8000.0;
        assert!(
            per_rank_equiv > 7.0 && per_rank_equiv < 9.0,
            "{per_rank_equiv}"
        );
    }
}
