//! Schedule generators for [`crate::coll::allgatherv`].

use simnet::{Round, Schedule, Transfer};

/// Ring allgatherv with per-rank block sizes in bytes: in round `k` rank
/// `i` forwards the block that originated at `(i - k) mod n`.
pub fn ring(counts_bytes: &[u64]) -> Schedule {
    let n = counts_bytes.len();
    let mut s = Schedule::new(n);
    for k in 0..n.saturating_sub(1) {
        s.push(Round::of(
            (0..n)
                .map(|i| Transfer {
                    src: i,
                    dst: (i + 1) % n,
                    bytes: counts_bytes[(i + n - k) % n],
                })
                .collect(),
        ));
    }
    s
}

/// Mirrors [`crate::coll::allgatherv::auto`] (ring).
pub fn auto(counts_bytes: &[u64]) -> Schedule {
    ring(counts_bytes)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::assert_trace_matches;
    use crate::coll;
    use crate::runtime::run_traced;

    fn check(counts: Vec<usize>) {
        let n = counts.len();
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let (_, trace) = run_traced(n, |comm| {
            let send = vec![1u64; counts2[comm.rank()]];
            let mut recv = vec![0u64; total];
            coll::allgatherv::ring(comm, &send, &mut recv, &counts2);
        });
        let counts_bytes: Vec<u64> = counts.iter().map(|&c| (c * 8) as u64).collect();
        assert_trace_matches(trace, &super::ring(&counts_bytes));
    }

    #[test]
    fn ring_matches_real_execution() {
        check(vec![3; 5]);
        check(vec![1, 4, 2, 7]);
        check(vec![0, 3, 0, 2]);
        check(vec![4]);
    }

    #[test]
    fn equal_counts_reduce_to_allgather_schedule() {
        let v = super::ring(&[32; 6]);
        let a = super::super::allgather::ring(6, 32);
        assert_eq!(v.transfer_multiset(), a.transfer_multiset());
    }
}
