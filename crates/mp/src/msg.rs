//! Message representation and matching filters.

/// A user-visible message tag. User tags must be below [`MAX_USER_TAG`];
/// the range above is reserved for collective-operation sequencing.
pub type Tag = u32;

/// Highest user tag value (exclusive). Tags with the top bit set are
/// reserved for internal collective traffic.
pub const MAX_USER_TAG: Tag = 1 << 31;

/// Internal: the collective-reserved tag bit.
pub(crate) const COLL_BIT: Tag = 1 << 31;

/// A message in flight. `src` is the *global* rank of the sender; `tag`
/// packs the communicator id (high 32 bits) with the in-communicator tag
/// (low 32 bits) so that traffic on different communicators never matches.
/// The payload is shared ([`Payload`]), so fan-out sends of one buffer to
/// many destinations never copy it per edge.
#[derive(Debug)]
pub(crate) struct Message {
    pub src: usize,
    pub full_tag: u64,
    pub data: crate::payload::Payload,
    /// Simulated arrival time under virtual execution (None otherwise).
    pub arrival: Option<simnet::Time>,
}

/// Packs a communicator id and tag into a wire tag.
#[inline]
pub(crate) fn pack_tag(comm_id: u32, tag: Tag) -> u64 {
    (u64::from(comm_id) << 32) | u64::from(tag)
}

/// A receive-side matching filter.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Match {
    /// Communicator the receive is posted on (always matched exactly).
    pub comm_id: u32,
    /// Expected *global* sender rank, or `None` for any source.
    pub src: Option<usize>,
    /// Expected tag, or `None` for any tag.
    pub tag: Option<Tag>,
}

impl Match {
    /// Whether `msg` satisfies this filter.
    #[inline]
    pub fn accepts(&self, msg: &Message) -> bool {
        self.accepts_parts(msg.src, msg.full_tag)
    }

    /// Whether a message with the given envelope (global source + packed
    /// tag) satisfies this filter — the key-level form the indexed mailbox
    /// matches lanes and posted receives against without needing a
    /// materialised [`Message`].
    #[inline]
    pub fn accepts_parts(&self, src: usize, full_tag: u64) -> bool {
        if (full_tag >> 32) as u32 != self.comm_id {
            return false;
        }
        if let Some(want) = self.src {
            if src != want {
                return false;
            }
        }
        if let Some(tag) = self.tag {
            if (full_tag & 0xFFFF_FFFF) as Tag != tag {
                return false;
            }
        }
        true
    }

    /// Whether source and tag are both pinned, making the filter a direct
    /// lane address (O(1) lookup) rather than a wildcard scan.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.src.is_some() && self.tag.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, comm: u32, tag: Tag) -> Message {
        Message {
            src,
            full_tag: pack_tag(comm, tag),
            data: crate::payload::Payload::from_vec(Vec::new()),
            arrival: None,
        }
    }

    #[test]
    fn exact_match() {
        let m = msg(3, 7, 42);
        let f = Match {
            comm_id: 7,
            src: Some(3),
            tag: Some(42),
        };
        assert!(f.accepts(&m));
    }

    #[test]
    fn comm_id_always_matched() {
        let m = msg(3, 7, 42);
        let f = Match {
            comm_id: 8,
            src: None,
            tag: None,
        };
        assert!(!f.accepts(&m));
    }

    #[test]
    fn wildcards() {
        let m = msg(3, 7, 42);
        assert!(Match {
            comm_id: 7,
            src: None,
            tag: Some(42)
        }
        .accepts(&m));
        assert!(Match {
            comm_id: 7,
            src: Some(3),
            tag: None
        }
        .accepts(&m));
        assert!(Match {
            comm_id: 7,
            src: None,
            tag: None
        }
        .accepts(&m));
        assert!(!Match {
            comm_id: 7,
            src: Some(4),
            tag: None
        }
        .accepts(&m));
        assert!(!Match {
            comm_id: 7,
            src: None,
            tag: Some(41)
        }
        .accepts(&m));
    }

    #[test]
    fn tag_packing_separates_comm_and_tag() {
        let t = pack_tag(0xABCD, 0x1234);
        assert_eq!(t >> 32, 0xABCD);
        assert_eq!(t & 0xFFFF_FFFF, 0x1234);
    }
}
