//! Runtime verification instrumentation: the substrate the `mpcheck`
//! crate's analyses are built on.
//!
//! When a run is *instrumented* (via [`run_checked`] or a scoped install,
//! see [`ScopedCheck`]), the runtime attaches an [`Inspector`] to the
//! world:
//!
//! - every blocking point (mailbox receives, rendezvous posts — and
//!   through them every collective phase) registers a *wait edge* in a
//!   shared per-rank registry before parking, so a detector thread can
//!   run wait-for-graph cycle detection while the program is live and
//!   convert a silent hang into a [`Deadlock`] diagnosis naming the
//!   actual cycle, call sites and pending-message inventory;
//! - every send, receive and collective call is appended to a cheap
//!   per-rank ring buffer of [`Event`]s, which the post-run lint pass in
//!   `mpcheck` scans for MPI-misuse classes (unmatched sends, collective
//!   divergence, tag leaks, wildcard races);
//! - an optional seeded *schedule perturbation* shim injects
//!   deterministic yields and micro-delays at the instrumented points so
//!   arrival-order-dependent behaviour is exercised under many
//!   interleavings.
//!
//! The uninstrumented fast path pays one `Option` check per operation.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::comm::Comm;
use crate::mailbox::Handoff;
use crate::runtime::World;

/// Configuration of one instrumented run.
#[derive(Clone, Debug)]
pub struct Settings {
    /// Seed for the deterministic schedule-perturbation shim. Two runs
    /// with the same seed perturb identically.
    pub seed: u64,
    /// Whether to inject deterministic yields/delays at instrumented
    /// points (off: record + detect only).
    pub perturb: bool,
    /// Capacity of each rank's event ring buffer; older events are
    /// dropped (and counted) past this.
    pub ring_capacity: usize,
    /// Detector thread polling interval.
    pub poll: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            seed: 0,
            perturb: false,
            ring_capacity: 1 << 16,
            poll: Duration::from_millis(10),
        }
    }
}

impl Settings {
    /// A perturbing variant of these settings under `seed` (seed 0 keeps
    /// perturbation off, so seed sweeps include the unperturbed order).
    pub fn with_seed(&self, seed: u64) -> Settings {
        Settings {
            seed,
            perturb: seed != 0,
            ..self.clone()
        }
    }
}

/// One recorded communication event. Ranks, communicator ids and tags are
/// *global* (world ranks, packed communicator ids), so events from
/// different ranks of one communicator compare directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A point-to-point payload left this rank.
    Send {
        /// Destination world rank.
        dst: usize,
        /// Communicator id.
        comm: u32,
        /// In-communicator tag.
        tag: u32,
        /// Encoded payload size.
        bytes: usize,
    },
    /// A receive matched on this rank (recorded at match time).
    Recv {
        /// Source world rank of the matched message.
        src: usize,
        /// Communicator id.
        comm: u32,
        /// In-communicator tag of the matched message.
        tag: u32,
        /// Encoded payload size.
        bytes: usize,
        /// Whether the receive's filter was a wildcard (source and/or
        /// tag unpinned).
        wildcard: bool,
        /// Number of distinct queued lanes that matched the filter at
        /// match time. A wildcard receive with `candidates >= 2` chose
        /// by arrival order — a race.
        candidates: u32,
    },
    /// A collective call entered on this rank.
    CollBegin {
        /// Communicator id.
        comm: u32,
        /// Per-communicator collective call index on this rank.
        index: u32,
        /// Operation name ("bcast", "allreduce", ...).
        op: &'static str,
        /// Root argument, if the operation has one.
        root: Option<usize>,
        /// Per-rank payload shape in bytes for operations whose shape
        /// must agree across ranks; `None` for vector variants.
        shape: Option<u64>,
    },
    /// The matching collective call returned.
    CollEnd {
        /// Communicator id.
        comm: u32,
        /// Per-communicator collective call index on this rank.
        index: u32,
    },
}

/// What a blocked rank is waiting on.
#[derive(Clone, Debug)]
pub enum WaitOn {
    /// Blocked in a receive: `(source, comm, tag)`, wildcards as `None`.
    Recv {
        /// Communicator id the receive is posted on.
        comm: u32,
        /// Expected source world rank (`None` = any source).
        src: Option<usize>,
        /// Expected tag (`None` = any tag).
        tag: Option<u32>,
    },
    /// Blocked in a collective-object rendezvous (RMA window creation)
    /// waiting for the keyed object to be published.
    Rendezvous {
        /// Rendezvous key (packed communicator id + sequence).
        key: u64,
    },
}

impl std::fmt::Display for WaitOn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitOn::Recv { comm, src, tag } => {
                let src = src.map_or("any".into(), |s| s.to_string());
                let tag = tag.map_or("any".into(), |t| format!("{t:#x}"));
                write!(f, "receive (src {src}, comm {comm:#x}, tag {tag})")
            }
            WaitOn::Rendezvous { key } => write!(f, "rendezvous (key {key:#x})"),
        }
    }
}

/// The collective call a rank is currently inside (for wait annotation).
#[derive(Clone, Copy, Debug)]
pub struct CollSite {
    /// Operation name.
    pub op: &'static str,
    /// Communicator id.
    pub comm: u32,
    /// Per-communicator collective call index on this rank.
    pub index: u32,
}

impl std::fmt::Display for CollSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} #{} on comm {:#x}", self.op, self.index, self.comm)
    }
}

/// A blocked rank in a [`Deadlock`] diagnosis.
#[derive(Clone, Debug)]
pub struct WaitSnapshot {
    /// The blocked world rank.
    pub rank: usize,
    /// What it is waiting on.
    pub on: WaitOn,
    /// The collective call it is inside, if any.
    pub coll: Option<CollSite>,
}

/// One queued-but-unmatched message lane in a mailbox (used both in
/// deadlock diagnoses and in the finalize leftover inventory).
#[derive(Clone, Debug)]
pub struct LaneInfo {
    /// Receiving world rank (the mailbox owner).
    pub dst: usize,
    /// Sending world rank.
    pub src: usize,
    /// Communicator id.
    pub comm: u32,
    /// In-communicator tag.
    pub tag: u32,
    /// Messages queued in the lane.
    pub queued: usize,
    /// Total payload bytes queued in the lane.
    pub bytes: usize,
}

impl std::fmt::Display for LaneInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "-> rank {}: from {} (comm {:#x}, tag {:#x}): {} message(s), {} byte(s)",
            self.dst, self.src, self.comm, self.tag, self.queued, self.bytes
        )
    }
}

/// A deadlock diagnosis: the wait-for cycle (when one exists among
/// pinned-source receive edges), every blocked rank's wait, and the
/// pending-message inventory per mailbox lane.
#[derive(Clone, Debug)]
pub struct Deadlock {
    /// Ranks forming a wait-for cycle, in cycle order; `None` when the
    /// stall has no pinned-source cycle (e.g. wildcard waits).
    pub cycle: Option<Vec<usize>>,
    /// Every blocked rank and what it waits on.
    pub waits: Vec<WaitSnapshot>,
    /// Queued unmatched messages across all mailboxes.
    pub inventory: Vec<LaneInfo>,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cycle {
            Some(cycle) => {
                let mut path: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
                path.push(cycle[0].to_string());
                writeln!(f, "wait-for cycle: {}", path.join(" -> "))?;
            }
            None => writeln!(
                f,
                "global stall: {} rank(s) blocked, no sender can run",
                self.waits.len()
            )?,
        }
        for w in &self.waits {
            write!(f, "  rank {}: blocked in {}", w.rank, w.on)?;
            match &w.coll {
                Some(site) => writeln!(f, " inside {site}")?,
                None => writeln!(f)?,
            }
        }
        if self.inventory.is_empty() {
            writeln!(f, "pending messages: none")?;
        } else {
            writeln!(f, "pending messages:")?;
            for lane in &self.inventory {
                writeln!(f, "  {lane}")?;
            }
        }
        Ok(())
    }
}

/// Marker prefix of poison-panic messages, so callers can distinguish a
/// detector-initiated unwind from an ordinary rank panic.
pub const POISON_MARK: &str = "mp: deadlock detected\n";

/// Everything an instrumented run recorded, handed to the analysis layer.
pub struct RunLog {
    /// World size.
    pub n: usize,
    /// Perturbation seed the run used.
    pub seed: u64,
    /// Per-rank event logs, in per-rank program order.
    pub events: Vec<Vec<Event>>,
    /// Per-rank count of events dropped to ring-buffer overflow.
    pub dropped: Vec<u64>,
    /// Messages still queued (unmatched) at finalize.
    pub leftover: Vec<LaneInfo>,
    /// The deadlock diagnosis, if the detector fired.
    pub deadlock: Option<Arc<Deadlock>>,
}

/// Outcome of [`run_checked`].
pub struct Checked<R> {
    /// Per-rank results, present only when every rank completed normally.
    pub results: Option<Vec<R>>,
    /// Ranks that panicked for reasons other than deadlock poisoning,
    /// with their panic messages.
    pub panics: Vec<(usize, String)>,
    /// The recorded run log.
    pub log: RunLog,
}

// ---------------------------------------------------------------------
// Inspector
// ---------------------------------------------------------------------

struct Wait {
    on: WaitOn,
    /// The hand-off slot a blocked receive parks on; the detector probes
    /// it to rule out a wake already in flight.
    slot: Option<Arc<Handoff>>,
}

#[derive(Default)]
struct RankState {
    waiting: Option<Wait>,
    coll: Option<CollSite>,
    /// Per-communicator collective call counter.
    coll_index: HashMap<u32, u32>,
    /// Collective nesting depth (only the outermost call is recorded).
    coll_depth: u32,
    finished: bool,
    perturb_ctr: u64,
}

struct EventRing {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    fn push(&mut self, e: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(e);
    }
}

/// The shared instrumentation registry of one instrumented world: wait
/// states, event rings, the poison flag and the perturbation shim.
pub struct Inspector {
    settings: Settings,
    ranks: Vec<Mutex<RankState>>,
    events: Vec<Mutex<EventRing>>,
    /// Bumped on every wait transition; the detector requires it stable
    /// across polls before diagnosing.
    activity: AtomicU64,
    poisoned: AtomicBool,
    poison: Mutex<Option<Arc<Deadlock>>>,
    /// A schedule controller observing every recorded event (controlled
    /// cooperative runs); `None` on plain checked runs.
    observer: Option<Arc<dyn crate::coop::ScheduleController>>,
}

impl Inspector {
    pub(crate) fn new(n: usize, settings: Settings) -> Inspector {
        Inspector::new_observed(n, settings, None)
    }

    pub(crate) fn new_observed(
        n: usize,
        settings: Settings,
        observer: Option<Arc<dyn crate::coop::ScheduleController>>,
    ) -> Inspector {
        Inspector {
            ranks: (0..n).map(|_| Mutex::new(RankState::default())).collect(),
            events: (0..n)
                .map(|_| {
                    Mutex::new(EventRing {
                        buf: VecDeque::new(),
                        cap: settings.ring_capacity.max(16),
                        dropped: 0,
                    })
                })
                .collect(),
            settings,
            activity: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            poison: Mutex::new(None),
            observer,
        }
    }

    pub(crate) fn record(&self, rank: usize, event: Event) {
        if let Some(obs) = &self.observer {
            obs.note_event(rank, &event);
        }
        self.events[rank].lock().push(event);
    }

    pub(crate) fn begin_wait(&self, rank: usize, on: WaitOn, slot: Option<Arc<Handoff>>) {
        let mut st = self.ranks[rank].lock();
        st.waiting = Some(Wait { on, slot });
        drop(st);
        self.activity.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn end_wait(&self, rank: usize) {
        self.ranks[rank].lock().waiting = None;
        self.activity.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn finish(&self, rank: usize) {
        self.ranks[rank].lock().finished = true;
        self.activity.fetch_add(1, Ordering::Release);
    }

    /// Enters a collective call; returns the recorded site for the
    /// outermost call on this rank, `None` when nested inside another.
    pub(crate) fn coll_begin(
        &self,
        rank: usize,
        comm: u32,
        op: &'static str,
        root: Option<usize>,
        shape: Option<u64>,
    ) -> Option<CollSite> {
        let mut st = self.ranks[rank].lock();
        st.coll_depth += 1;
        if st.coll_depth > 1 {
            return None;
        }
        let counter = st.coll_index.entry(comm).or_insert(0);
        let index = *counter;
        *counter += 1;
        let site = CollSite { op, comm, index };
        st.coll = Some(site);
        drop(st);
        self.record(
            rank,
            Event::CollBegin {
                comm,
                index,
                op,
                root,
                shape,
            },
        );
        Some(site)
    }

    pub(crate) fn coll_end(&self, rank: usize, site: Option<CollSite>) {
        let mut st = self.ranks[rank].lock();
        st.coll_depth -= 1;
        if let Some(site) = site {
            st.coll = None;
            drop(st);
            self.record(
                rank,
                Event::CollEnd {
                    comm: site.comm,
                    index: site.index,
                },
            );
        }
    }

    /// Deterministic schedule perturbation: occasionally yield or briefly
    /// sleep at an instrumented point, chosen by a hash of
    /// `(seed, rank, per-rank call counter)`.
    pub(crate) fn maybe_perturb(&self, rank: usize) {
        if !self.settings.perturb {
            return;
        }
        let ctr = {
            let mut st = self.ranks[rank].lock();
            st.perturb_ctr += 1;
            st.perturb_ctr
        };
        let h = splitmix64(
            self.settings
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((rank as u64) << 32)
                .wrapping_add(ctr),
        );
        if h.is_multiple_of(31) {
            std::thread::sleep(Duration::from_micros(50 + h % 200));
        } else if h.is_multiple_of(3) {
            std::thread::yield_now();
        }
    }

    /// Parks the calling thread for one watchdog poll interval. The
    /// native deadlock watchdog in `runtime.rs` calls through here so
    /// that wall-clock sleeps stay confined to this module, the process
    /// transports and the harness (enforced by `ci/arch_lint.sh`).
    pub(crate) fn poll_sleep(&self) {
        std::thread::sleep(self.settings.poll);
    }

    pub(crate) fn poisoned(&self) -> Option<Arc<Deadlock>> {
        if !self.poisoned.load(Ordering::Acquire) {
            return None;
        }
        self.poison.lock().clone()
    }

    pub(crate) fn set_poison(&self, d: Arc<Deadlock>) {
        *self.poison.lock() = Some(d);
        self.poisoned.store(true, Ordering::Release);
    }

    pub(crate) fn activity(&self) -> u64 {
        self.activity.load(Ordering::Acquire)
    }

    /// Whether every unfinished rank is currently parked in a wait (and
    /// at least one rank is unfinished).
    pub(crate) fn all_unfinished_waiting(&self) -> bool {
        let mut any_live = false;
        for st in &self.ranks {
            let st = st.lock();
            if st.finished {
                continue;
            }
            any_live = true;
            if st.waiting.is_none() {
                return false;
            }
        }
        any_live
    }

    /// Drains the per-rank event rings (call after all ranks joined).
    pub(crate) fn drain_events(&self) -> (Vec<Vec<Event>>, Vec<u64>) {
        let mut events = Vec::with_capacity(self.events.len());
        let mut dropped = Vec::with_capacity(self.events.len());
        for ring in &self.events {
            let mut ring = ring.lock();
            events.push(std::mem::take(&mut ring.buf).into_iter().collect());
            dropped.push(ring.dropped);
        }
        (events, dropped)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------
// Detector
// ---------------------------------------------------------------------

/// Attempts a deadlock diagnosis. Call only after the caller has observed
/// a stable all-waiting snapshot; re-verifies against in-flight wakes
/// (filled hand-off slots, published rendezvous objects) and returns
/// `None` when any rank can still make progress.
pub(crate) fn diagnose(world: &World, insp: &Inspector) -> Option<Arc<Deadlock>> {
    let n = world.n;
    let mut waits: Vec<WaitSnapshot> = Vec::new();
    let mut slots: Vec<Option<Arc<Handoff>>> = Vec::new();
    for (rank, st) in insp.ranks.iter().enumerate() {
        let st = st.lock();
        if st.finished {
            continue;
        }
        match &st.waiting {
            None => return None, // someone is runnable after all
            Some(w) => {
                waits.push(WaitSnapshot {
                    rank,
                    on: w.on.clone(),
                    coll: st.coll,
                });
                slots.push(w.slot.clone());
            }
        }
    }
    if waits.is_empty() {
        return None;
    }
    // Rule out wakes already in flight.
    for (w, slot) in waits.iter().zip(&slots) {
        if let Some(slot) = slot {
            if slot.has_arrived() {
                return None;
            }
        }
        if let WaitOn::Rendezvous { key } = &w.on {
            if world.rendezvous.lock().contains_key(key) {
                return None;
            }
        }
    }
    // Wait-for edges from pinned-source receives: each blocked rank has
    // at most one successor, so the graph is functional and a simple
    // coloured walk finds a cycle if one exists.
    let mut succ: Vec<Option<usize>> = vec![None; n];
    for w in &waits {
        if let WaitOn::Recv { src: Some(s), .. } = w.on {
            succ[w.rank] = Some(s);
        }
    }
    let cycle = find_cycle(&succ);
    let mut inventory: Vec<LaneInfo> = Vec::new();
    for mb in &world.mailboxes {
        inventory.extend(mb.inventory());
    }
    Some(Arc::new(Deadlock {
        cycle,
        waits,
        inventory,
    }))
}

/// Wait snapshot of a *subset* of the world's ranks: the per-process half
/// of the cross-process deadlock detector. Like [`diagnose`], but only
/// over `ranks` (the ranks resident in this process) and returning the
/// raw wait edges rather than a full diagnosis — cycle finding happens on
/// process 0 once every process's edges are in. Returns `None` when some
/// listed rank is runnable or has a wake already in flight (filled
/// hand-off slot, published rendezvous object); an empty vector when
/// every listed rank has finished.
pub(crate) fn snapshot_ranks(
    world: &World,
    insp: &Inspector,
    ranks: &[usize],
) -> Option<Vec<WaitSnapshot>> {
    let mut waits: Vec<WaitSnapshot> = Vec::new();
    let mut slots: Vec<Option<Arc<Handoff>>> = Vec::new();
    for &rank in ranks {
        let st = insp.ranks[rank].lock();
        if st.finished {
            continue;
        }
        match &st.waiting {
            None => return None, // someone is runnable after all
            Some(w) => {
                waits.push(WaitSnapshot {
                    rank,
                    on: w.on.clone(),
                    coll: st.coll,
                });
                slots.push(w.slot.clone());
            }
        }
    }
    for (w, slot) in waits.iter().zip(&slots) {
        if let Some(slot) = slot {
            if slot.has_arrived() {
                return None;
            }
        }
        if let WaitOn::Rendezvous { key } = &w.on {
            if world.rendezvous.lock().contains_key(key) {
                return None;
            }
        }
    }
    Some(waits)
}

/// Whether every unfinished rank among `ranks` is currently parked in a
/// wait. True when every listed rank has finished — a process whose
/// residents are all done contributes no wait edges but must not block
/// the global stall from being declared.
pub(crate) fn ranks_stable(insp: &Inspector, ranks: &[usize]) -> bool {
    for &rank in ranks {
        let st = insp.ranks[rank].lock();
        if !st.finished && st.waiting.is_none() {
            return false;
        }
    }
    true
}

/// Finds a cycle in a functional graph (`succ[v]` = at most one edge).
pub(crate) fn find_cycle(succ: &[Option<usize>]) -> Option<Vec<usize>> {
    // 0 = unvisited, 1 = on current path, 2 = done.
    let mut color = vec![0u8; succ.len()];
    for start in 0..succ.len() {
        if color[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut v = start;
        loop {
            if color[v] == 1 {
                // Found: the cycle is the path suffix starting at v.
                let at = path.iter().position(|&p| p == v).expect("on path");
                return Some(path[at..].to_vec());
            }
            if color[v] == 2 {
                break;
            }
            color[v] = 1;
            path.push(v);
            match succ[v] {
                Some(next) => v = next,
                None => break,
            }
        }
        for p in path {
            color[p] = 2;
        }
    }
    None
}

// ---------------------------------------------------------------------
// Scoped (ambient) instrumentation
// ---------------------------------------------------------------------

/// An ambient check configuration: while installed on a thread, every
/// [`crate::run`] call made *from that thread* runs instrumented and
/// hands its [`RunLog`] to `sink`. Thread-local on purpose: a campaign
/// driver checks every workload it executes without other threads (e.g.
/// concurrently running tests) being affected.
#[derive(Clone)]
pub struct ScopedCheck {
    /// Settings for each instrumented run.
    pub settings: Settings,
    /// Receives the log of every instrumented run, on the installing
    /// thread, after the run's ranks have joined.
    pub sink: Arc<dyn Fn(RunLog) + Send + Sync>,
}

thread_local! {
    static SCOPED: std::cell::RefCell<Option<ScopedCheck>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `check` on the current thread until the returned guard drops.
pub fn install_scoped(check: ScopedCheck) -> ScopedGuard {
    SCOPED.with(|s| *s.borrow_mut() = Some(check));
    ScopedGuard { _private: () }
}

/// Uninstalls the thread's ambient check configuration on drop.
pub struct ScopedGuard {
    _private: (),
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        SCOPED.with(|s| *s.borrow_mut() = None);
    }
}

pub(crate) fn scoped() -> Option<ScopedCheck> {
    SCOPED.with(|s| s.borrow().clone())
}

/// Runs `f` as an instrumented SPMD program over `n` ranks: deadlocks are
/// detected live (and diagnosed instead of hanging), every communication
/// event is recorded, and — when `settings.perturb` — the schedule is
/// deterministically perturbed under `settings.seed`.
///
/// Unlike [`crate::run`], rank panics do not propagate: they come back in
/// [`Checked::panics`], and a detected deadlock in
/// [`RunLog::deadlock`](RunLog).
pub fn run_checked<R, F>(n: usize, settings: Settings, f: F) -> Checked<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    crate::runtime::run_checked_inner(n, settings, &f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection_on_functional_graphs() {
        // 0 -> 1 -> 0 plus a tail 2 -> 0.
        let succ = vec![Some(1), Some(0), Some(0)];
        let cycle = find_cycle(&succ).unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&0) && cycle.contains(&1));
        // Chain without a cycle.
        assert_eq!(find_cycle(&[Some(1), Some(2), None]), None);
        // Self-loop.
        assert_eq!(find_cycle(&[Some(0)]), Some(vec![0]));
        // Empty.
        assert_eq!(find_cycle(&[]), None);
    }

    #[test]
    fn event_ring_drops_oldest() {
        let mut ring = EventRing {
            buf: VecDeque::new(),
            cap: 2,
            dropped: 0,
        };
        for dst in 0..3 {
            ring.push(Event::Send {
                dst,
                comm: 0,
                tag: 0,
                bytes: 1,
            });
        }
        assert_eq!(ring.dropped, 1);
        assert_eq!(ring.buf.len(), 2);
        assert!(matches!(ring.buf[0], Event::Send { dst: 1, .. }));
    }

    #[test]
    fn perturbation_is_deterministic_in_seed() {
        // Same seed -> same decision sequence (hash is pure).
        let h1: Vec<u64> = (0..100).map(|i| splitmix64(7 ^ i)).collect();
        let h2: Vec<u64> = (0..100).map(|i| splitmix64(7 ^ i)).collect();
        assert_eq!(h1, h2);
        let h3: Vec<u64> = (0..100).map(|i| splitmix64(8 ^ i)).collect();
        assert_ne!(h1, h3);
    }

    #[test]
    fn run_checked_clean_program_completes() {
        let checked = run_checked(4, Settings::default(), |comm| {
            let mut x = [comm.rank() as u64];
            comm.allreduce(&mut x, crate::Op::Sum);
            x[0]
        });
        assert_eq!(checked.results, Some(vec![6, 6, 6, 6]));
        assert!(checked.panics.is_empty());
        assert!(checked.log.deadlock.is_none());
        assert!(checked.log.leftover.is_empty());
        // Every rank recorded its collective.
        for rank in 0..4 {
            assert!(checked.log.events[rank].iter().any(|e| matches!(
                e,
                Event::CollBegin {
                    op: "allreduce",
                    ..
                }
            )));
        }
    }

    #[test]
    fn run_checked_diagnoses_recv_recv_cycle() {
        let checked = run_checked(
            2,
            Settings {
                poll: Duration::from_millis(5),
                ..Settings::default()
            },
            |comm| {
                // Head-to-head receives: the classic deadlock.
                let mut buf = [0u8];
                let peer = 1 - comm.rank();
                comm.recv(&mut buf, peer, 1);
                comm.send(&buf, peer, 1);
            },
        );
        assert!(checked.results.is_none());
        let d = checked.log.deadlock.expect("deadlock must be diagnosed");
        let cycle = d.cycle.clone().expect("a recv/recv cycle is pinned-source");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&0) && cycle.contains(&1));
        assert_eq!(d.waits.len(), 2);
    }

    #[test]
    fn run_checked_reports_ordinary_panics() {
        let checked = run_checked(2, Settings::default(), |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 blocks on a message that never comes; the detector
            // must report the stall rather than hang.
            let mut buf = [0u8];
            comm.recv(&mut buf, 1, 1);
        });
        assert!(checked.results.is_none());
        assert_eq!(checked.panics.len(), 1);
        assert_eq!(checked.panics[0].0, 1);
        assert!(checked.panics[0].1.contains("boom"));
        // Rank 0's stall is diagnosed (no cycle: its peer is gone).
        assert!(checked.log.deadlock.is_some());
    }

    #[test]
    fn perturbed_run_stays_correct() {
        for seed in 1..4u64 {
            let checked = run_checked(3, Settings::default().with_seed(seed), |comm| {
                let mut all = vec![0u64; comm.size()];
                comm.allgather(&[comm.rank() as u64], &mut all);
                all
            });
            let results = checked.results.expect("clean program");
            for r in results {
                assert_eq!(r, vec![0, 1, 2]);
            }
        }
    }
}
