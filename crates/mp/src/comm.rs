//! Communicators: rank naming, point-to-point operations, splitting.
//!
//! A [`Comm`] is a rank's handle onto an ordered group of ranks, mirroring
//! `MPI_Comm`. Point-to-point sends are *eager*: the payload is copied into
//! the destination mailbox and the send completes locally, so symmetric
//! exchange patterns (ring `sendrecv`, pairwise all-to-all) cannot deadlock.

use std::cell::Cell;
use std::sync::Arc;

use crate::datatype::{decode_into, encode, Word};
use crate::msg::{pack_tag, Match, Message, Tag, COLL_BIT, MAX_USER_TAG};
use crate::runtime::World;

/// A communicator: this rank's view of an ordered group of ranks.
///
/// Each rank thread owns its own `Comm` value (the type is intentionally
/// not `Sync`): collective calls sequence themselves through an internal
/// per-rank counter, which is correct precisely because every rank of the
/// group executes the same collective calls in the same order — the MPI
/// contract.
pub struct Comm {
    world: Arc<World>,
    /// Local rank -> global rank.
    group: Arc<Vec<usize>>,
    rank: usize,
    id: u32,
    coll_seq: Cell<u32>,
}

impl Comm {
    /// The world communicator for `rank` (all ranks, identity mapping).
    pub(crate) fn world(world: Arc<World>, rank: usize) -> Comm {
        let n = world.n;
        Comm {
            world,
            group: Arc::new((0..n).collect()),
            rank,
            id: 0,
            coll_seq: Cell::new(0),
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// The global (world) rank behind a local rank.
    #[inline]
    pub fn global_rank(&self, local: usize) -> usize {
        self.group[local]
    }

    /// Reserves a fresh internal tag for one collective call. All ranks call
    /// collectives in the same order, so the per-rank counters agree.
    pub(crate) fn next_coll_tag(&self) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        COLL_BIT | (seq & (COLL_BIT - 1))
    }

    fn local_of_global(&self, global: usize) -> usize {
        self.group
            .iter()
            .position(|&g| g == global)
            .expect("message from a rank outside this communicator")
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Sends raw bytes to local rank `dst` with `tag`.
    pub(crate) fn send_bytes(&self, data: Vec<u8>, dst: usize, tag: Tag) {
        assert!(dst < self.size(), "send to rank {dst} of {}", self.size());
        let (gsrc, gdst) = (self.group[self.rank], self.group[dst]);
        // Under virtual execution, price the message and stamp its
        // simulated arrival before delivery.
        let arrival = self.world.virtual_net.as_ref().map(|net| {
            let mut clock = self.world.virtual_clocks[gsrc].lock();
            let cost = net.p2p(gsrc, gdst, data.len() as u64, *clock);
            *clock = clock.max(cost.sender_done);
            cost.arrival
        });
        let msg = Message {
            src: gsrc,
            full_tag: pack_tag(self.id, tag),
            data,
            arrival,
        };
        self.world.deliver(gdst, msg);
    }

    /// Receives raw bytes from local rank `src` with `tag`.
    pub(crate) fn recv_bytes(&self, src: usize, tag: Tag) -> Vec<u8> {
        assert!(src < self.size(), "recv from rank {src} of {}", self.size());
        let filter = Match {
            comm_id: self.id,
            src: Some(self.group[src]),
            tag: Some(tag),
        };
        let msg = self.world.mailboxes[self.group[self.rank]].recv(filter);
        self.observe_arrival(msg.arrival);
        msg.data
    }

    /// Advances this rank's virtual clock to a received message's
    /// simulated arrival (no-op natively).
    fn observe_arrival(&self, arrival: Option<simnet::Time>) {
        if let Some(arr) = arrival {
            let mut clock = self.world.virtual_clocks[self.group[self.rank]].lock();
            *clock = clock.max(arr);
        }
    }

    /// Sends `buf` to local rank `dst` with a user `tag`
    /// (< [`MAX_USER_TAG`]).
    pub fn send<T: Word>(&self, buf: &[T], dst: usize, tag: Tag) {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        self.send_bytes(encode(buf), dst, tag);
    }

    /// Receives exactly `buf.len()` words from local rank `src` with `tag`.
    /// Panics if the matched message has a different length (MPI would
    /// raise `MPI_ERR_TRUNCATE`).
    pub fn recv<T: Word>(&self, buf: &mut [T], src: usize, tag: Tag) {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        let data = self.recv_bytes(src, tag);
        decode_into(&data, buf);
    }

    /// Receives a message of any length, optionally constrained by source
    /// and/or tag. Returns the payload and the actual (source, tag).
    pub fn recv_any<T: Word>(&self, src: Option<usize>, tag: Option<Tag>) -> (Vec<T>, usize, Tag) {
        if let Some(t) = tag {
            assert!(t < MAX_USER_TAG, "tag {t:#x} is in the reserved range");
        }
        let filter = Match {
            comm_id: self.id,
            src: src.map(|s| self.group[s]),
            tag,
        };
        let msg = self.world.mailboxes[self.group[self.rank]].recv(filter);
        self.observe_arrival(msg.arrival);
        let mut out = vec![T::read_le(&vec![0u8; T::SIZE][..]); msg.data.len() / T::SIZE];
        decode_into(&msg.data, &mut out);
        let tag = (msg.full_tag & 0xFFFF_FFFF) as Tag;
        (out, self.local_of_global(msg.src), tag)
    }

    /// Combined send+receive (both with tag `tag`), the workhorse of ring
    /// and exchange patterns. Deadlock-free because sends are eager.
    pub fn sendrecv<T: Word>(&self, sbuf: &[T], dst: usize, rbuf: &mut [T], src: usize, tag: Tag) {
        self.send(sbuf, dst, tag);
        self.recv(rbuf, src, tag);
    }

    /// Internal sendrecv on a collective tag.
    pub(crate) fn sendrecv_bytes_coll(
        &self,
        sdata: Vec<u8>,
        dst: usize,
        src: usize,
        tag: Tag,
    ) -> Vec<u8> {
        self.send_bytes(sdata, dst, tag);
        self.recv_bytes(src, tag)
    }

    /// Posts a nonblocking receive. The returned handle is matched when
    /// [`RecvHandle::wait`] is called.
    pub fn irecv<T: Word>(&self, src: usize, tag: Tag) -> RecvHandle<T> {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        RecvHandle {
            src,
            tag,
            _marker: std::marker::PhantomData,
        }
    }

    /// Nonblocking send. With the eager protocol the payload is already
    /// delivered when this returns, so there is no send handle to wait on;
    /// the name exists for API parity with MPI-style code.
    pub fn isend<T: Word>(&self, buf: &[T], dst: usize, tag: Tag) {
        self.send(buf, dst, tag);
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Splits the communicator by `color`; ranks with equal color form a new
    /// communicator ordered by `(key, old rank)`. Mirrors `MPI_Comm_split`.
    pub fn split(&self, color: u32, key: i64) -> Comm {
        // Share (color, key) among all ranks via the existing allgather.
        let mine = [u64::from(color), key as u64, self.rank as u64];
        let mut all = vec![0u64; 3 * self.size()];
        crate::coll::allgather::ring(self, &mine, &mut all);

        let mut members: Vec<(i64, usize)> = (0..self.size())
            .filter(|&r| all[3 * r] as u32 == color)
            .map(|r| (all[3 * r + 1] as i64, all[3 * r + 2] as usize))
            .collect();
        members.sort_unstable();

        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("calling rank must be in its own color group");

        // Deterministic child id: identical on every member of the new
        // communicator, distinct (whp) from sibling/parent communicators.
        let seq = self.coll_seq.get();
        let id = mix32(self.id, seq, color);

        Comm {
            world: Arc::clone(&self.world),
            group: Arc::new(group),
            rank,
            id,
            coll_seq: Cell::new(0),
        }
    }

    /// A duplicate communicator with the same group but an isolated tag
    /// space. Mirrors `MPI_Comm_dup`.
    pub fn dup(&self) -> Comm {
        let seq = self.coll_seq.get();
        // Advance the parent's sequence so distinct dup() calls get
        // distinct ids.
        self.coll_seq.set(seq.wrapping_add(1));
        Comm {
            world: Arc::clone(&self.world),
            group: Arc::clone(&self.group),
            rank: self.rank,
            id: mix32(self.id, seq, DUP_MARKER),
            coll_seq: Cell::new(0),
        }
    }
}

const DUP_MARKER: u32 = 0xD0B1_C0DE;

/// Deterministic 3-input mixer for communicator ids (splitmix-style).
fn mix32(a: u32, b: u32, c: u32) -> u32 {
    let mut x = (u64::from(a) << 32) ^ (u64::from(b) << 16) ^ u64::from(c);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x = x ^ (x >> 31);
    (x as u32) | 1 // never 0, which is reserved for the world communicator
}

impl Comm {
    /// This rank's virtual clock (zero natively).
    pub(crate) fn world_virtual_clock(&self) -> simnet::Time {
        self.world
            .virtual_clocks
            .get(self.group[self.rank])
            .map(|m| *m.lock())
            .unwrap_or(simnet::Time::ZERO)
    }

    /// The world's virtual net, if executing virtually.
    pub(crate) fn world_virtual_net(&self) -> Option<&dyn crate::virt::VirtualNet> {
        self.world.virtual_net.as_deref()
    }

    /// Adds `dt` to this rank's virtual clock (no-op natively).
    pub(crate) fn advance_virtual_clock(&self, dt: simnet::Time) {
        if let Some(m) = self.world.virtual_clocks.get(self.group[self.rank]) {
            let mut clock = m.lock();
            *clock += dt;
        }
    }

    /// Raises this rank's virtual clock to at least `t`.
    pub(crate) fn set_virtual_clock_at_least(&self, t: simnet::Time) {
        if let Some(m) = self.world.virtual_clocks.get(self.group[self.rank]) {
            let mut clock = m.lock();
            *clock = clock.max(t);
        }
    }

    /// Collective rendezvous on a shared object: the communicator's rank
    /// 0 constructs it, every member receives the same `Arc`. All members
    /// must call this in the same collective order (the internal sequence
    /// number is the key). Used by RMA window creation.
    pub(crate) fn rendezvous_storage<T: Send + Sync + 'static>(
        &self,
        make: impl FnOnce() -> std::sync::Arc<T>,
    ) -> std::sync::Arc<T> {
        let seq = self.next_coll_tag();
        let key = (u64::from(self.id) << 32) | u64::from(seq & 0x7FFF_FFFF);
        let n = self.size();
        if self.rank == 0 {
            let arc = make();
            if n > 1 {
                let mut map = self.world.rendezvous.lock();
                map.insert(key, (arc.clone(), n - 1));
                self.world.rendezvous_cv.notify_all();
            }
            arc
        } else {
            let mut map = self.world.rendezvous.lock();
            loop {
                if let Some(entry) = map.get_mut(&key) {
                    let arc = entry
                        .0
                        .clone()
                        .downcast::<T>()
                        .expect("rendezvous type mismatch");
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        map.remove(&key);
                    }
                    return arc;
                }
                self.world.rendezvous_cv.wait(&mut map);
            }
        }
    }
}

/// A posted nonblocking receive; call [`wait`](RecvHandle::wait) to match it.
pub struct RecvHandle<T> {
    src: usize,
    tag: Tag,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Word> RecvHandle<T> {
    /// Blocks until the receive matches; fills `buf` (exact length).
    pub fn wait(self, comm: &Comm, buf: &mut [T]) {
        comm.recv(buf, self.src, self.tag);
    }
}
