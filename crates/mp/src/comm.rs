//! Communicators: rank naming, point-to-point operations, splitting.
//!
//! A [`Comm`] is a rank's handle onto an ordered group of ranks, mirroring
//! `MPI_Comm`. Point-to-point sends are *eager* below
//! [`LONG_MSG_THRESHOLD`](crate::coll::LONG_MSG_THRESHOLD) — the payload
//! is copied into the destination mailbox and the send completes locally,
//! so symmetric exchange patterns (ring `sendrecv`, pairwise all-to-all)
//! cannot deadlock. At and above the threshold, typed sends first try the
//! *rendezvous* fast path: if the destination rank has already posted a
//! matching receive of the right size, the sender encodes straight into
//! that receive's buffer — one payload copy end to end and no
//! intermediate allocation. When no receive is posted, large sends fall
//! back to the eager path, preserving the no-deadlock property.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crate::check::{CollSite, Event, Inspector, WaitOn};
use crate::coll::LONG_MSG_THRESHOLD;
use crate::datatype::{decode_into, encode, Word};
use crate::mailbox::PostedHandle;
use crate::msg::{pack_tag, Match, Message, Tag, COLL_BIT, MAX_USER_TAG};
use crate::payload::Payload;
use crate::runtime::World;

/// A communicator: this rank's view of an ordered group of ranks.
///
/// Each rank thread owns its own `Comm` value (the type is intentionally
/// not `Sync`): collective calls sequence themselves through an internal
/// per-rank counter, which is correct precisely because every rank of the
/// group executes the same collective calls in the same order — the MPI
/// contract.
pub struct Comm {
    world: Arc<World>,
    /// Local rank -> global rank.
    group: Arc<Vec<usize>>,
    /// Global rank -> local rank (the inverse of `group`), precomputed so
    /// wildcard receives translate sources in O(1) instead of scanning.
    inverse: Arc<HashMap<usize, usize>>,
    rank: usize,
    id: u32,
    coll_seq: Cell<u32>,
    /// Recycled rendezvous receive buffer: posted with large blocking
    /// receives so matching sends encode straight into it, then taken
    /// back. Grows to the largest message received and is reused for the
    /// rest of the communicator's life — steady-state large receives
    /// allocate nothing.
    scratch: RefCell<Vec<u8>>,
}

fn invert(group: &[usize]) -> Arc<HashMap<usize, usize>> {
    Arc::new(group.iter().enumerate().map(|(l, &g)| (g, l)).collect())
}

impl Comm {
    /// The world communicator for `rank` (all ranks, identity mapping).
    /// The group and its inverse are shared tables built once per world:
    /// building them per rank was O(n²) memory, which at 65536 ranks is
    /// fatal long before the compute is.
    pub(crate) fn world(world: Arc<World>, rank: usize) -> Comm {
        let group = Arc::clone(&world.world_group);
        let inverse = Arc::clone(&world.world_inverse);
        Comm {
            world,
            group,
            inverse,
            rank,
            id: 0,
            coll_seq: Cell::new(0),
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// The global (world) rank behind a local rank.
    #[inline]
    pub fn global_rank(&self, local: usize) -> usize {
        self.group[local]
    }

    /// Reserves a fresh internal tag for one collective call. All ranks call
    /// collectives in the same order, so the per-rank counters agree.
    pub(crate) fn next_coll_tag(&self) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        COLL_BIT | (seq & (COLL_BIT - 1))
    }

    fn local_of_global(&self, global: usize) -> usize {
        *self
            .inverse
            .get(&global)
            .expect("message from a rank outside this communicator")
    }

    /// Schedule-perturbation hook: a deterministic yield/delay at this
    /// instrumented point when a checked run asked for it, no-op otherwise.
    #[inline]
    fn perturb(&self) {
        if let Some(insp) = &self.world.inspector {
            insp.maybe_perturb(self.group[self.rank]);
        }
    }

    /// Opens an instrumented collective scope (records `CollBegin`, and
    /// `CollEnd` when the returned guard drops). `root`, when present, is
    /// a *local* rank and is recorded as its global rank, so divergence
    /// comparison across members is mapping-independent. No-op guard on
    /// unchecked runs.
    pub(crate) fn coll_scope(
        &self,
        op: &'static str,
        root: Option<usize>,
        shape: Option<u64>,
    ) -> CollScope {
        match &self.world.inspector {
            None => CollScope { state: None },
            Some(insp) => {
                self.perturb();
                let grank = self.group[self.rank];
                let root = root.map(|r| self.group[r]);
                let site = insp.coll_begin(grank, self.id, op, root, shape);
                CollScope {
                    state: Some((Arc::clone(insp), grank, site)),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Sends a (possibly shared) payload to local rank `dst` with `tag`.
    /// Cloning a [`Payload`] only bumps a refcount, so fan-out callers
    /// deliver one buffer to many destinations without per-edge copies.
    pub(crate) fn send_payload(&self, data: Payload, dst: usize, tag: Tag) {
        assert!(dst < self.size(), "send to rank {dst} of {}", self.size());
        let (gsrc, gdst) = (self.group[self.rank], self.group[dst]);
        if let Some(insp) = &self.world.inspector {
            insp.maybe_perturb(gsrc);
            insp.record(
                gsrc,
                Event::Send {
                    dst: gdst,
                    comm: self.id,
                    tag,
                    bytes: data.len(),
                },
            );
        }
        // Under virtual execution, price the message and stamp its
        // simulated arrival before delivery.
        let arrival = self.world.virtual_net.as_ref().map(|net| {
            let mut clock = self.world.virtual_clocks[gsrc].lock();
            let cost = net.p2p(gsrc, gdst, data.len() as u64, *clock);
            *clock = clock.max(cost.sender_done);
            cost.arrival
        });
        let msg = Message {
            src: gsrc,
            full_tag: pack_tag(self.id, tag),
            data,
            arrival,
        };
        self.world.deliver(gdst, msg);
    }

    /// Sends raw bytes to local rank `dst` with `tag`.
    pub(crate) fn send_bytes(&self, data: Vec<u8>, dst: usize, tag: Tag) {
        self.send_payload(Payload::from_vec(data), dst, tag);
    }

    /// Receives a payload from local rank `src` with `tag`, without
    /// forcing ownership of the bytes (zero-copy for forwarding). On rank
    /// threads the receive blocks inside the mailbox and the future
    /// completes in one poll; in a cooperative task the wait is a yield
    /// point.
    pub(crate) async fn recv_payload_async(&self, src: usize, tag: Tag) -> Payload {
        assert!(src < self.size(), "recv from rank {src} of {}", self.size());
        self.perturb();
        let filter = Match {
            comm_id: self.id,
            src: Some(self.group[src]),
            tag: Some(tag),
        };
        let msg = self.world.mailboxes[self.group[self.rank]]
            .recv_async(filter)
            .await;
        self.observe_arrival(msg.arrival);
        msg.data
    }

    /// Receives raw bytes from local rank `src` with `tag`. Zero-copy when
    /// the sender's buffer has no other holders (the point-to-point norm).
    pub(crate) fn recv_bytes(&self, src: usize, tag: Tag) -> Vec<u8> {
        crate::coop::block_on(self.recv_bytes_async(src, tag))
    }

    /// Awaitable mirror of [`recv_bytes`](Comm::recv_bytes).
    pub(crate) async fn recv_bytes_async(&self, src: usize, tag: Tag) -> Vec<u8> {
        self.recv_payload_async(src, tag).await.into_vec()
    }

    /// Advances this rank's virtual clock to a received message's
    /// simulated arrival (no-op natively).
    fn observe_arrival(&self, arrival: Option<simnet::Time>) {
        if let Some(arr) = arrival {
            let mut clock = self.world.virtual_clocks[self.group[self.rank]].lock();
            *clock = clock.max(arr);
        }
    }

    /// Sends `buf` to local rank `dst` with a user `tag`
    /// (< [`MAX_USER_TAG`]).
    pub fn send<T: Word>(&self, buf: &[T], dst: usize, tag: Tag) {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        self.send_words(buf, dst, tag);
    }

    /// Typed send with the rendezvous fast path for large messages (see
    /// the module docs). Virtual execution always takes the eager path so
    /// that message pricing stays in one place.
    pub(crate) fn send_words<T: Word>(&self, words: &[T], dst: usize, tag: Tag) {
        assert!(dst < self.size(), "send to rank {dst} of {}", self.size());
        let bytes = words.len() * T::SIZE;
        if bytes >= LONG_MSG_THRESHOLD && self.world.virtual_net.is_none() {
            let (gsrc, gdst) = (self.group[self.rank], self.group[dst]);
            if self
                .world
                .rendezvous_words(gsrc, gdst, pack_tag(self.id, tag), words)
            {
                return;
            }
        }
        self.send_payload(Payload::from_vec(encode(words)), dst, tag);
    }

    /// Receives exactly `buf.len()` words from local rank `src` with `tag`.
    /// Panics if the matched message has a different length (MPI would
    /// raise `MPI_ERR_TRUNCATE`).
    pub fn recv<T: Word>(&self, buf: &mut [T], src: usize, tag: Tag) {
        crate::coop::block_on(self.recv_async(buf, src, tag));
    }

    /// Awaitable mirror of [`recv`](Comm::recv), for rank bodies running
    /// on the cooperative scheduler.
    pub async fn recv_async<T: Word>(&self, buf: &mut [T], src: usize, tag: Tag) {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        assert!(src < self.size(), "recv from rank {src} of {}", self.size());
        let filter = Match {
            comm_id: self.id,
            src: Some(self.group[src]),
            tag: Some(tag),
        };
        self.recv_words_into_async(filter, buf).await;
    }

    /// Typed receive; posts a rendezvous buffer for large messages so a
    /// matching send can encode straight into it. The scratch `RefCell`
    /// is only borrowed between awaits, never across.
    async fn recv_words_into_async<T: Word>(&self, filter: Match, buf: &mut [T]) -> (usize, Tag) {
        self.perturb();
        let bytes = buf.len() * T::SIZE;
        let mailbox = &self.world.mailboxes[self.group[self.rank]];
        let (msg, spare) = if bytes >= LONG_MSG_THRESHOLD {
            let posted = self.take_scratch(bytes);
            mailbox.recv_posting_async(filter, Some(posted)).await
        } else {
            mailbox.recv_posting_async(filter, None).await
        };
        self.observe_arrival(msg.arrival);
        decode_into(&msg.data, buf);
        let envelope = (
            self.local_of_global(msg.src),
            (msg.full_tag & 0xFFFF_FFFF) as Tag,
        );
        // Recycle for the next large receive: the unused posted buffer,
        // or the payload itself when we are its only holder.
        if let Some(v) = spare {
            self.put_scratch(v);
        } else if let Some(v) = msg.data.try_into_unique_vec() {
            self.put_scratch(v);
        }
        envelope
    }

    /// Takes the recycled receive buffer, sized to exactly `len` bytes.
    fn take_scratch(&self, len: usize) -> Vec<u8> {
        let mut v = self.scratch.take();
        v.resize(len, 0);
        v
    }

    fn put_scratch(&self, v: Vec<u8>) {
        // Keep the larger allocation so alternating message sizes still
        // converge on an allocation-free steady state.
        if v.capacity() > self.scratch.borrow().capacity() {
            self.scratch.replace(v);
        }
    }

    /// Sends an untyped byte buffer (`MPI_BYTE`) to local rank `dst`. The
    /// entire transfer costs exactly one copy: the bytes are captured into
    /// a payload here (into a buffer recycled from this rank's previous
    /// receives, so steady-state traffic allocates nothing) and the
    /// receiver takes ownership of that payload.
    pub fn send_raw(&self, data: &[u8], dst: usize, tag: Tag) {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        let mut v = self.scratch.take();
        v.clear();
        v.extend_from_slice(data);
        self.send_bytes(v, dst, tag);
    }

    /// Receives an untyped byte message from local rank `src`, replacing
    /// `buf`'s contents (and length) with the payload. Zero-copy on the
    /// receive side: ownership of the payload allocation moves into `buf`
    /// whenever the sender's buffer has no other holders, which is always
    /// the case for point-to-point [`send_raw`](Comm::send_raw) traffic.
    /// The displaced buffer is kept for recycling by later sends and
    /// rendezvous receives.
    pub fn recv_raw(&self, buf: &mut Vec<u8>, src: usize, tag: Tag) {
        crate::coop::block_on(self.recv_raw_async(buf, src, tag));
    }

    /// Awaitable mirror of [`recv_raw`](Comm::recv_raw).
    pub async fn recv_raw_async(&self, buf: &mut Vec<u8>, src: usize, tag: Tag) {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        let old = std::mem::replace(buf, self.recv_payload_async(src, tag).await.into_vec());
        self.put_scratch(old);
    }

    /// Receives a message of any length, optionally constrained by source
    /// and/or tag. Returns the payload and the actual (source, tag).
    pub fn recv_any<T: Word>(&self, src: Option<usize>, tag: Option<Tag>) -> (Vec<T>, usize, Tag) {
        crate::coop::block_on(self.recv_any_async(src, tag))
    }

    /// Awaitable mirror of [`recv_any`](Comm::recv_any).
    pub async fn recv_any_async<T: Word>(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> (Vec<T>, usize, Tag) {
        if let Some(t) = tag {
            assert!(t < MAX_USER_TAG, "tag {t:#x} is in the reserved range");
        }
        self.perturb();
        let filter = Match {
            comm_id: self.id,
            src: src.map(|s| self.group[s]),
            tag,
        };
        let msg = self.world.mailboxes[self.group[self.rank]]
            .recv_async(filter)
            .await;
        self.observe_arrival(msg.arrival);
        let out = crate::datatype::decode(&msg.data);
        let tag = (msg.full_tag & 0xFFFF_FFFF) as Tag;
        (out, self.local_of_global(msg.src), tag)
    }

    /// Combined send+receive (both with tag `tag`), the workhorse of ring
    /// and exchange patterns. Deadlock-free because sends are eager (the
    /// large-message rendezvous path only fires when the matching receive
    /// is already posted, so it cannot introduce a send-send wait cycle).
    pub fn sendrecv<T: Word>(&self, sbuf: &[T], dst: usize, rbuf: &mut [T], src: usize, tag: Tag) {
        crate::coop::block_on(self.sendrecv_async(sbuf, dst, rbuf, src, tag));
    }

    /// Awaitable mirror of [`sendrecv`](Comm::sendrecv). The send half is
    /// eager and completes synchronously; only the receive can suspend.
    pub async fn sendrecv_async<T: Word>(
        &self,
        sbuf: &[T],
        dst: usize,
        rbuf: &mut [T],
        src: usize,
        tag: Tag,
    ) {
        self.send(sbuf, dst, tag);
        self.recv_async(rbuf, src, tag).await;
    }

    /// Internal sendrecv on a collective tag.
    pub(crate) async fn sendrecv_bytes_coll_async(
        &self,
        sdata: Vec<u8>,
        dst: usize,
        src: usize,
        tag: Tag,
    ) -> Vec<u8> {
        self.send_bytes(sdata, dst, tag);
        self.recv_bytes_async(src, tag).await
    }

    /// Payload-level sendrecv on a collective tag: the received payload
    /// stays shared, so ring pipelines can forward it to the next peer
    /// without re-encoding or copying.
    pub(crate) async fn sendrecv_payload_coll_async(
        &self,
        sdata: Payload,
        dst: usize,
        src: usize,
        tag: Tag,
    ) -> Payload {
        self.send_payload(sdata, dst, tag);
        self.recv_payload_async(src, tag).await
    }

    /// Posts a nonblocking receive into the mailbox's posted-receive
    /// table. An already-queued matching message is claimed immediately;
    /// otherwise any matching send from now on — including sends that
    /// happen before [`RecvHandle::wait`] — completes the receive
    /// directly, exactly as if the wait were already in progress.
    pub fn irecv<T: Word>(&self, src: usize, tag: Tag) -> RecvHandle<T> {
        assert!(tag < MAX_USER_TAG, "tag {tag:#x} is in the reserved range");
        assert!(src < self.size(), "recv from rank {src} of {}", self.size());
        let filter = Match {
            comm_id: self.id,
            src: Some(self.group[src]),
            tag: Some(tag),
        };
        let grank = self.group[self.rank];
        let posted = self.world.mailboxes[grank].post(filter, None);
        RecvHandle {
            world: Arc::clone(&self.world),
            grank,
            filter,
            posted: Some(posted),
            _marker: std::marker::PhantomData,
        }
    }

    /// Nonblocking send. With the eager/rendezvous protocol the payload is
    /// already delivered when this returns, so there is no send handle to
    /// wait on; the name exists for API parity with MPI-style code.
    pub fn isend<T: Word>(&self, buf: &[T], dst: usize, tag: Tag) {
        self.send(buf, dst, tag);
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Splits the communicator by `color`; ranks with equal color form a new
    /// communicator ordered by `(key, old rank)`. Mirrors `MPI_Comm_split`.
    pub fn split(&self, color: u32, key: i64) -> Comm {
        crate::coop::block_on(self.split_async(color, key))
    }

    /// Awaitable mirror of [`split`](Comm::split).
    pub async fn split_async(&self, color: u32, key: i64) -> Comm {
        let _scope = self.coll_scope("split", None, None);
        // Share (color, key) among all ranks via the existing allgather.
        let mine = [u64::from(color), key as u64, self.rank as u64];
        let mut all = vec![0u64; 3 * self.size()];
        crate::coll::allgather::ring_async(self, &mine, &mut all).await;

        let mut members: Vec<(i64, usize)> = (0..self.size())
            .filter(|&r| all[3 * r] as u32 == color)
            .map(|r| (all[3 * r + 1] as i64, all[3 * r + 2] as usize))
            .collect();
        members.sort_unstable();

        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("calling rank must be in its own color group");

        // Deterministic child id: identical on every member of the new
        // communicator, distinct (whp) from sibling/parent communicators.
        let seq = self.coll_seq.get();
        let id = mix32(self.id, seq, color);

        let inverse = invert(&group);
        Comm {
            world: Arc::clone(&self.world),
            group: Arc::new(group),
            inverse,
            rank,
            id,
            coll_seq: Cell::new(0),
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// A duplicate communicator with the same group but an isolated tag
    /// space. Mirrors `MPI_Comm_dup`.
    pub fn dup(&self) -> Comm {
        let _scope = self.coll_scope("dup", None, None);
        let seq = self.coll_seq.get();
        // Advance the parent's sequence so distinct dup() calls get
        // distinct ids.
        self.coll_seq.set(seq.wrapping_add(1));
        Comm {
            world: Arc::clone(&self.world),
            group: Arc::clone(&self.group),
            inverse: Arc::clone(&self.inverse),
            rank: self.rank,
            id: mix32(self.id, seq, DUP_MARKER),
            coll_seq: Cell::new(0),
            scratch: RefCell::new(Vec::new()),
        }
    }
}

const DUP_MARKER: u32 = 0xD0B1_C0DE;

/// Deterministic 3-input mixer for communicator ids (splitmix-style).
fn mix32(a: u32, b: u32, c: u32) -> u32 {
    let mut x = (u64::from(a) << 32) ^ (u64::from(b) << 16) ^ u64::from(c);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x = x ^ (x >> 31);
    (x as u32) | 1 // never 0, which is reserved for the world communicator
}

impl Comm {
    /// This rank's virtual clock (zero natively).
    pub(crate) fn world_virtual_clock(&self) -> simnet::Time {
        self.world
            .virtual_clocks
            .get(self.group[self.rank])
            .map(|m| *m.lock())
            .unwrap_or(simnet::Time::ZERO)
    }

    /// The world's virtual net, if executing virtually.
    pub(crate) fn world_virtual_net(&self) -> Option<&dyn crate::virt::VirtualNet> {
        self.world.virtual_net.as_deref()
    }

    /// Adds `dt` to this rank's virtual clock (no-op natively).
    pub(crate) fn advance_virtual_clock(&self, dt: simnet::Time) {
        if let Some(m) = self.world.virtual_clocks.get(self.group[self.rank]) {
            let mut clock = m.lock();
            *clock += dt;
        }
    }

    /// Raises this rank's virtual clock to at least `t`.
    pub(crate) fn set_virtual_clock_at_least(&self, t: simnet::Time) {
        if let Some(m) = self.world.virtual_clocks.get(self.group[self.rank]) {
            let mut clock = m.lock();
            *clock = clock.max(t);
        }
    }

    /// Collective rendezvous on a shared object: the communicator's rank
    /// 0 constructs it, every member receives the same `Arc`. All members
    /// must call this in the same collective order (the internal sequence
    /// number is the key). Used by RMA window creation.
    pub(crate) fn rendezvous_storage<T: Send + Sync + 'static>(
        &self,
        make: impl FnOnce() -> std::sync::Arc<T>,
    ) -> std::sync::Arc<T> {
        assert!(
            !crate::coop::in_coop(),
            "mp: rendezvous_storage (RMA window creation) is not supported inside cooperative tasks"
        );
        if let Some(remote) = &self.world.remote {
            // The shared object lives in one address space; a window over
            // ranks in different processes has nowhere to live.
            for &g in self.group.iter() {
                assert!(
                    remote.resident(g),
                    "mp: rendezvous_storage (RMA window creation) requires every communicator \
                     member to be resident in one process (rank {g} is hosted elsewhere)"
                );
            }
        }
        let seq = self.next_coll_tag();
        let key = (u64::from(self.id) << 32) | u64::from(seq & 0x7FFF_FFFF);
        let n = self.size();
        if self.rank == 0 {
            let arc = make();
            if n > 1 {
                let mut map = self.world.rendezvous.lock();
                map.insert(key, (arc.clone(), n - 1));
                self.world.rendezvous_cv.notify_all();
            }
            arc
        } else {
            let grank = self.group[self.rank];
            let insp = self.world.inspector.clone();
            let mut map = self.world.rendezvous.lock();
            let mut registered = false;
            loop {
                if let Some(entry) = map.get_mut(&key) {
                    let arc = entry
                        .0
                        .clone()
                        .downcast::<T>()
                        .expect("rendezvous type mismatch");
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        map.remove(&key);
                    }
                    drop(map);
                    if registered {
                        if let Some(insp) = &insp {
                            insp.end_wait(grank);
                        }
                    }
                    return arc;
                }
                match &insp {
                    None => {
                        if let Some((baton, rank)) = crate::coop::current_baton() {
                            // Baton-serialized virtual run: parking on the
                            // condvar would wedge the single runner. Hand
                            // the baton on and re-check after requeue.
                            drop(map);
                            baton.yield_now(rank);
                            map = self.world.rendezvous.lock();
                        } else {
                            self.world.rendezvous_cv.wait(&mut map);
                        }
                    }
                    Some(insp) => {
                        // Instrumented: publish the wait edge, park in
                        // short slices and honour a detector poison.
                        if !registered {
                            insp.begin_wait(grank, WaitOn::Rendezvous { key }, None);
                            registered = true;
                        }
                        if let Some(diagnosis) = insp.poisoned() {
                            drop(map);
                            panic!("{}{diagnosis}", crate::check::POISON_MARK);
                        }
                        self.world
                            .rendezvous_cv
                            .wait_for(&mut map, Duration::from_millis(25));
                    }
                }
            }
        }
    }
}

/// RAII guard of one instrumented collective call (see
/// [`Comm::coll_scope`]); records `CollEnd` on drop. Inert on unchecked
/// runs.
pub(crate) struct CollScope {
    state: Option<(Arc<Inspector>, usize, Option<CollSite>)>,
}

impl Drop for CollScope {
    fn drop(&mut self) {
        if let Some((insp, grank, site)) = self.state.take() {
            insp.coll_end(grank, site);
        }
    }
}

/// A posted nonblocking receive; call [`wait`](RecvHandle::wait) to match it.
///
/// The receive is live in the mailbox's posted-receive table from the
/// moment [`Comm::irecv`] returns: a matching send completes it whether
/// it lands before or after `wait` is called, and both orders observe the
/// same message. Dropping an unawaited handle cancels the posting; a
/// message it had already claimed is restored to the queue unreordered.
pub struct RecvHandle<T> {
    world: Arc<World>,
    grank: usize,
    filter: Match,
    posted: Option<PostedHandle>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Word> RecvHandle<T> {
    /// Blocks until the receive matches; fills `buf` (exact length).
    /// `comm` must be the communicator the receive was posted on.
    pub fn wait(self, comm: &Comm, buf: &mut [T]) {
        crate::coop::block_on(self.wait_async(comm, buf));
    }

    /// Awaitable mirror of [`wait`](RecvHandle::wait).
    pub async fn wait_async(mut self, comm: &Comm, buf: &mut [T]) {
        let posted = self.posted.take().expect("posting survives until wait");
        let (msg, _) = self.world.mailboxes[self.grank]
            .complete_async(posted, self.filter)
            .await;
        comm.observe_arrival(msg.arrival);
        decode_into(&msg.data, buf);
    }
}

impl<T> Drop for RecvHandle<T> {
    fn drop(&mut self) {
        if let Some(posted) = self.posted.take() {
            self.world.mailboxes[self.grank].cancel(posted);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{run, run_traced};

    const DATA_TAG: crate::msg::Tag = 7;
    const SYNC_TAG: crate::msg::Tag = 8;

    /// Satellite: a pre-posted `irecv` must observe exactly the same
    /// message whether the matching send lands before or after the post.
    #[test]
    fn irecv_post_before_send_and_send_before_post_agree() {
        let expect: Vec<u32> = (0..257).map(|i| i * 3 + 1).collect();
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                // Case A: rank 1 posts first (it tells us once it has).
                let mut ready = [0u8];
                comm.recv(&mut ready, 1, SYNC_TAG);
                comm.send(
                    &(0..257).map(|i| i * 3 + 1).collect::<Vec<u32>>(),
                    1,
                    DATA_TAG,
                );
                // Case B: the payload is delivered (and a marker behind it
                // in program order) before rank 1 posts its receive.
                comm.send(
                    &(0..257).map(|i| i * 3 + 1).collect::<Vec<u32>>(),
                    1,
                    DATA_TAG,
                );
                comm.send(&[1u8], 1, SYNC_TAG);
                Vec::new()
            } else {
                // Case A: post, signal, then let the send complete it.
                let handle = comm.irecv::<u32>(0, DATA_TAG);
                comm.send(&[1u8], 0, SYNC_TAG);
                let mut a = vec![0u32; 257];
                handle.wait(comm, &mut a);
                // Case B: the marker on SYNC_TAG was sent *after* the data,
                // so once it arrives the data message is already queued and
                // the posting takes the eager-claimed path.
                let mut marker = [0u8];
                comm.recv(&mut marker, 0, SYNC_TAG);
                let handle = comm.irecv::<u32>(0, DATA_TAG);
                let mut b = vec![0u32; 257];
                handle.wait(comm, &mut b);
                assert_eq!(a, b, "both orders must observe the same message");
                a
            }
        });
        assert_eq!(results[1], expect);
    }

    /// Dropping an unawaited `irecv` must not lose a message it had
    /// already claimed: a later receive still sees it, in order.
    #[test]
    fn dropping_an_irecv_requeues_its_message() {
        run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[10u8], 1, DATA_TAG);
                comm.send(&[20u8], 1, DATA_TAG);
            } else {
                let mut sync = [0u8; 1];
                // Wait until both messages are queued (non-overtaking per
                // lane: the second send is behind the first).
                comm.recv_any::<u8>(Some(0), Some(DATA_TAG)); // takes the 10
                {
                    let _claimed = comm.irecv::<u8>(0, DATA_TAG); // claims the 20
                } // dropped unawaited -> message restored
                comm.recv(&mut sync, 0, DATA_TAG);
                assert_eq!(sync[0], 20, "requeued message must come back");
            }
        });
    }

    /// Large typed messages take the rendezvous path when the receive is
    /// already posted and the eager path otherwise; the observable result
    /// (data and trace) is identical either way.
    #[test]
    fn large_messages_roundtrip_on_both_paths() {
        let n_words = crate::coll::LONG_MSG_THRESHOLD / 8 + 13;
        let expect: Vec<u64> = (0..n_words as u64)
            .map(|i| i.wrapping_mul(0x9E37))
            .collect();
        for sender_delay in [false, true] {
            let ((), trace) = {
                let expect = expect.clone();
                let (mut results, trace) = run_traced(2, move |comm| {
                    if comm.rank() == 0 {
                        let mut ready = [0u8];
                        comm.recv(&mut ready, 1, SYNC_TAG);
                        if sender_delay {
                            // Give the receiver time to block in recv() so
                            // the rendezvous path can fire.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        comm.send(&expect, 1, DATA_TAG);
                    } else {
                        comm.send(&[1u8], 0, SYNC_TAG);
                        if !sender_delay {
                            // Let the send land first -> eager fallback.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        let mut buf = vec![0u64; expect.len()];
                        comm.recv(&mut buf, 0, DATA_TAG);
                        assert_eq!(buf, expect);
                    }
                });
                (results.pop().map(|_| ()).unwrap(), trace)
            };
            let data_bytes = (n_words * 8) as u64;
            assert!(
                trace
                    .iter()
                    .any(|t| t.src == 0 && t.dst == 1 && t.bytes == data_bytes),
                "large transfer must be traced identically on both paths"
            );
        }
    }

    /// `recv_any` returns the actual envelope alongside well-formed data.
    #[test]
    fn recv_any_reports_envelope() {
        run(3, |comm| {
            if comm.rank() == 1 {
                comm.send(&[0.5f64, 1.5], 2, 11);
            } else if comm.rank() == 2 {
                let (data, src, tag) = comm.recv_any::<f64>(None, None);
                assert_eq!((data.as_slice(), src, tag), ([0.5, 1.5].as_slice(), 1, 11));
            }
        });
    }
}
