//! One-sided communication (MPI-2 RMA): windows, `put`/`get`/`accumulate`
//! and the three synchronisation schemes of the MPI-2 standard — fence,
//! post-start-complete-wait (PSCW) and passive-target lock/unlock.
//!
//! The paper's conclusion plans exactly this study: "we also plan to
//! include ... one-sided (GET/PUT) MPI communication functions with three
//! synchronization schemes". Section 2.4 motivates it: "MPI-2 ... provides
//! one-sided communication (Get and Put) to access data from a remote
//! processor without involving it ... Semantics of one-sided communication
//! can be done using remote direct memory access (RDMA)".
//!
//! Like RDMA hardware, `put`/`get` here access the target's exposed memory
//! directly (no target-side message processing); synchronisation epochs
//! order those accesses exactly as MPI-2 requires.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::comm::Comm;
use crate::datatype::{decode_into, encode_into, Word};
use crate::reduce::{Numeric, Op};

/// Exposed memory regions, one per rank, shared across the SPMD world the
/// way registered RDMA buffers are.
struct WindowStorage {
    regions: Vec<RwLock<Vec<u8>>>,
    /// Passive-target exclusive locks (MPI_Win_lock semantics).
    locks: Vec<Mutex<()>>,
}

/// This rank's handle to a window created over a communicator.
///
/// Created collectively with [`Window::create`]; every access must happen
/// inside an epoch opened by one of the three synchronisation schemes:
///
/// * [`fence`](Window::fence) — active target, collective;
/// * [`start`](Window::start)/[`complete`](Window::complete) +
///   [`post`](Window::post)/[`wait`](Window::wait) — active target,
///   generalised (PSCW);
/// * [`lock`](Window::lock)/[`unlock`](Window::unlock) — passive target.
pub struct Window<'c> {
    comm: &'c Comm,
    storage: Arc<WindowStorage>,
    my_words: usize,
    word_size: usize,
    /// Dedicated tags for the PSCW handshakes, fixed at creation so that
    /// `post`/`start` and `complete`/`wait` pair up across ranks
    /// regardless of how many epochs each rank has run.
    post_tag: crate::msg::Tag,
    complete_tag: crate::msg::Tag,
}

impl<'c> Window<'c> {
    /// Collectively creates a window exposing `local_words` words of type
    /// `T` on every rank (initialised to zero). All ranks must call with
    /// equal `local_words`.
    pub fn create<T: Word>(comm: &'c Comm, local_words: usize) -> Window<'c> {
        let n = comm.size();
        let bytes = local_words * T::SIZE;

        // RDMA registration equivalent: rank 0 allocates the exposed
        // regions, every member receives the same Arc through the
        // runtime's collective rendezvous.
        let storage = WindowExchange::establish(comm, n, bytes);
        let post_tag = comm.next_coll_tag_public();
        let complete_tag = comm.next_coll_tag_public();
        Window {
            comm,
            storage,
            my_words: local_words,
            word_size: T::SIZE,
            post_tag,
            complete_tag,
        }
    }

    /// Number of words exposed by each rank.
    pub fn local_words(&self) -> usize {
        self.my_words
    }

    fn check<T: Word>(&self, target: usize, offset_words: usize, len_words: usize) {
        assert_eq!(T::SIZE, self.word_size, "window datatype mismatch");
        assert!(target < self.comm.size(), "target rank out of range");
        assert!(
            offset_words + len_words <= self.my_words,
            "RMA access beyond window bounds: {offset_words}+{len_words} > {}",
            self.my_words
        );
    }

    /// One-sided write: stores `data` into `target`'s window at
    /// `offset_words`. The target is not involved.
    pub fn put<T: Word>(&self, data: &[T], target: usize, offset_words: usize) {
        self.check::<T>(target, offset_words, data.len());
        let g = self.comm.global_rank(target);
        let mut region = self.storage.regions[g].write();
        let off = offset_words * T::SIZE;
        encode_into(data, &mut region[off..off + data.len() * T::SIZE]);
    }

    /// One-sided read: loads from `target`'s window at `offset_words`
    /// into `out`.
    pub fn get<T: Word>(&self, out: &mut [T], target: usize, offset_words: usize) {
        self.check::<T>(target, offset_words, out.len());
        let g = self.comm.global_rank(target);
        let region = self.storage.regions[g].read();
        let off = offset_words * T::SIZE;
        decode_into(&region[off..off + out.len() * T::SIZE], out);
    }

    /// One-sided atomic reduction: `target_window[offset..] = op(window,
    /// data)` element-wise (MPI_Accumulate). The write lock makes the
    /// whole update atomic with respect to other accumulates.
    pub fn accumulate<T: Numeric>(&self, data: &[T], target: usize, offset_words: usize, op: Op) {
        self.check::<T>(target, offset_words, data.len());
        let g = self.comm.global_rank(target);
        let mut region = self.storage.regions[g].write();
        let off = offset_words * T::SIZE;
        let mut current = vec![T::zero(); data.len()];
        decode_into(&region[off..off + data.len() * T::SIZE], &mut current);
        op.fold_into(&mut current, data);
        encode_into(&current, &mut region[off..off + data.len() * T::SIZE]);
    }

    // ------------------------------------------------------------------
    // Scheme 1: fence (active target, collective)
    // ------------------------------------------------------------------

    /// Collective fence: closes the previous access/exposure epoch and
    /// opens the next (MPI_Win_fence). All RMA issued before the fence is
    /// complete at every rank when it returns.
    pub fn fence(&self) {
        self.comm.barrier();
    }

    // ------------------------------------------------------------------
    // Scheme 2: post-start-complete-wait (active target, generalised)
    // ------------------------------------------------------------------

    /// Opens an access epoch to the `targets` group (MPI_Win_start):
    /// blocks until each target has posted its exposure epoch. When
    /// ranks are mutually origin and target, call [`post`](Window::post)
    /// *before* `start`, as MPI programs must.
    pub fn start(&self, targets: &[usize]) {
        for &t in targets {
            let _ = self.comm.recv_bytes_public(t, self.post_tag);
        }
    }

    /// Closes the access epoch (MPI_Win_complete): notifies each target
    /// that this origin's accesses are done.
    pub fn complete(&self, targets: &[usize]) {
        for &t in targets {
            self.comm
                .send_bytes_public(Vec::new(), t, self.complete_tag);
        }
    }

    /// Opens an exposure epoch for the `origins` group (MPI_Win_post).
    /// Non-blocking.
    pub fn post(&self, origins: &[usize]) {
        for &o in origins {
            self.comm.send_bytes_public(Vec::new(), o, self.post_tag);
        }
    }

    /// Closes the exposure epoch (MPI_Win_wait): blocks until every
    /// origin has completed.
    pub fn wait(&self, origins: &[usize]) {
        for &o in origins {
            let _ = self.comm.recv_bytes_public(o, self.complete_tag);
        }
    }

    // ------------------------------------------------------------------
    // Scheme 3: lock/unlock (passive target)
    // ------------------------------------------------------------------

    /// Opens a passive-target epoch on `target` (MPI_Win_lock, exclusive).
    /// The guard releases the lock on drop; [`unlock`](WindowGuard) is
    /// explicit via scope end.
    pub fn lock(&self, target: usize) -> WindowGuard<'_> {
        let g = self.comm.global_rank(target);
        // parking_lot MutexGuard is !Send but we hold it on this thread only.
        let guard = self.storage.locks[g].lock();
        WindowGuard { _guard: guard }
    }
}

/// A held passive-target lock; dropping it is MPI_Win_unlock.
pub struct WindowGuard<'w> {
    _guard: parking_lot::MutexGuard<'w, ()>,
}

/// Establishes the shared storage Arc across the world: rank 0 of the
/// communicator allocates, every rank deposits/collects through a world
/// rendezvous keyed by the collective sequence.
struct WindowExchange;

impl WindowExchange {
    fn establish(comm: &Comm, n: usize, bytes: usize) -> Arc<WindowStorage> {
        // Exchange a creation token so all ranks agree on sizes.
        let mut sizes = vec![0u64; n];
        comm.allgather(&[bytes as u64], &mut sizes);
        assert!(
            sizes.iter().all(|&s| s == bytes as u64),
            "all ranks must expose equally sized windows"
        );
        // Rank 0 allocates and publishes through the runtime's shared
        // rendezvous slot; others pick it up.
        comm.rendezvous_storage(|| {
            Arc::new(WindowStorage {
                regions: (0..n).map(|_| RwLock::new(vec![0u8; bytes])).collect(),
                locks: (0..n).map(|_| Mutex::new(())).collect(),
            })
        })
    }
}

// The rendezvous plumbing lives on Comm (see comm.rs) because it needs
// the world handle; re-exported trait-style helpers below keep rma.rs
// self-contained.

impl Comm {
    /// Internal: reserve a collective tag (public-for-module wrapper).
    pub(crate) fn next_coll_tag_public(&self) -> crate::msg::Tag {
        self.next_coll_tag()
    }

    pub(crate) fn send_bytes_public(&self, data: Vec<u8>, dst: usize, tag: crate::msg::Tag) {
        self.send_bytes(data, dst, tag);
    }

    pub(crate) fn recv_bytes_public(&self, src: usize, tag: crate::msg::Tag) -> Vec<u8> {
        self.recv_bytes(src, tag)
    }
}

/// Tests for the three synchronisation schemes and the access primitives.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;

    #[test]
    fn fence_put_exposes_data_everywhere() {
        let n = 5;
        run(n, |comm| {
            let win = Window::create::<f64>(comm, n);
            win.fence();
            // Everyone puts its rank into slot `me` of every target.
            let me = comm.rank();
            for t in 0..n {
                win.put(&[me as f64], t, me);
            }
            win.fence();
            let mut got = vec![0.0f64; n];
            win.get(&mut got, me, 0);
            let expect: Vec<f64> = (0..n).map(|r| r as f64).collect();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn get_reads_remote_without_target_involvement() {
        run(3, |comm| {
            let win = Window::create::<u64>(comm, 4);
            let me = comm.rank() as u64;
            win.put(
                &[me * 10, me * 10 + 1, me * 10 + 2, me * 10 + 3],
                comm.rank(),
                0,
            );
            win.fence();
            // Read the right neighbour's region; it does nothing special.
            let right = (comm.rank() + 1) % 3;
            let mut buf = [0u64; 4];
            win.get(&mut buf, right, 0);
            let r = right as u64;
            assert_eq!(buf, [r * 10, r * 10 + 1, r * 10 + 2, r * 10 + 3]);
            win.fence();
        });
    }

    #[test]
    fn pscw_epoch_orders_access() {
        // Rank 0 exposes; ranks 1..n put into disjoint slots under PSCW.
        let n = 4;
        let results = run(n, |comm| {
            let win = Window::create::<f64>(comm, n);
            let me = comm.rank();
            if me == 0 {
                let origins: Vec<usize> = (1..n).collect();
                win.post(&origins);
                win.wait(&origins);
                let mut got = vec![0.0f64; n];
                win.get(&mut got, 0, 0);
                got
            } else {
                win.start(&[0]);
                win.put(&[me as f64 * 2.0], 0, me);
                win.complete(&[0]);
                vec![]
            }
        });
        assert_eq!(results[0][1..], [2.0, 4.0, 6.0]);
    }

    #[test]
    fn passive_lock_accumulate_is_atomic() {
        // Every rank accumulates into rank 0's counter under a lock; the
        // sum must be exact despite full concurrency.
        let n = 8;
        let adds_per_rank = 50;
        let results = run(n, |comm| {
            let win = Window::create::<u64>(comm, 1);
            win.fence();
            for _ in 0..adds_per_rank {
                let _guard = win.lock(0);
                win.accumulate(&[1u64], 0, 0, Op::Sum);
            }
            win.fence();
            let mut v = [0u64];
            win.get(&mut v, 0, 0);
            v[0]
        });
        assert_eq!(results[0], (n * adds_per_rank) as u64);
    }

    #[test]
    fn accumulate_without_contention_matches_reduce() {
        let n = 6;
        let results = run(n, |comm| {
            let win = Window::create::<f64>(comm, 2);
            win.fence();
            // Disjoint-element accumulates still need the window's inner
            // write lock, which `accumulate` takes itself.
            win.accumulate(&[comm.rank() as f64, 1.0], 0, 0, Op::Sum);
            win.fence();
            let mut v = [0.0f64; 2];
            win.get(&mut v, 0, 0);
            v
        });
        let rank_sum = (0..6).sum::<usize>() as f64;
        assert_eq!(results[0], [rank_sum, 6.0]);
    }

    #[test]
    #[should_panic(expected = "beyond window bounds")]
    fn out_of_bounds_put_panics() {
        run(2, |comm| {
            let win = Window::create::<f64>(comm, 2);
            win.put(&[1.0, 2.0, 3.0], 0, 0);
        });
    }

    #[test]
    fn windows_on_split_communicators_are_independent() {
        let n = 4;
        run(n, |comm| {
            let sub = comm.split((comm.rank() % 2) as u32, comm.rank() as i64);
            let win = Window::create::<u64>(&sub, 1);
            win.fence();
            win.accumulate(&[1u64], 0, 0, Op::Sum);
            win.fence();
            let mut v = [0u64];
            win.get(&mut v, 0, 0);
            assert_eq!(v[0], sub.size() as u64);
        });
    }
}
