//! Criterion microbenchmarks of the HPCC compute kernels on the host:
//! DGEMM, STREAM, FFT and the RandomAccess generator. These are the
//! native (real-measurement) counterparts of the EP benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hpcc::kernels::dgemm::{dgemm, dgemm_flops};
use hpcc::kernels::fft::{fft, Complex};
use hpcc::kernels::ra_rng::UpdateStream;
use hpcc::kernels::stream::{StreamArrays, StreamKernel};

fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm");
    for n in [64usize, 256] {
        let a: Vec<f64> = (0..n * n).map(|i| (i % 97) as f64 * 0.01).collect();
        let b = a.clone();
        let mut out = vec![0.0; n * n];
        g.throughput(Throughput::Elements(dgemm_flops(n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| dgemm(n, black_box(&a), black_box(&b), black_box(&mut out)));
        });
    }
    g.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    let len = 1_000_000;
    let mut arrays = StreamArrays::new(len);
    for kernel in StreamKernel::ALL {
        g.throughput(Throughput::Bytes((len * kernel.bytes_per_element()) as u64));
        g.bench_function(format!("{kernel:?}").to_lowercase(), |bench| {
            bench.iter(|| arrays.run(black_box(kernel)));
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for log2n in [12u32, 16] {
        let n = 1usize << log2n;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut data = input.clone();
                fft(black_box(&mut data), false);
                data
            });
        });
    }
    g.finish();
}

fn bench_random_access_stream(c: &mut Criterion) {
    c.bench_function("ra_update_stream_1M", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for v in UpdateStream::at(black_box(12345)).take(1_000_000) {
                acc ^= v;
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_dgemm,
    bench_stream,
    bench_fft,
    bench_random_access_stream
);
criterion_main!(benches);
