//! One criterion bench per HPCC-derived table/figure of the paper
//! (Tables 1-3, Figs. 1-5): each bench regenerates its artefact at a
//! reduced sweep scale and asserts its shape, so `cargo bench` both
//! times and exercises the full regeneration pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hpcbench::figures::{self, FigureConfig};

fn cfg() -> FigureConfig {
    FigureConfig {
        max_procs: 32,
        imb_bytes: 1 << 20,
        ..FigureConfig::default()
    }
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1", |b| {
        b.iter(|| black_box(figures::table1()).rows.len())
    });
    c.bench_function("table2", |b| {
        b.iter(|| black_box(figures::table2()).rows.len())
    });
    c.bench_function("table3", |b| {
        b.iter(|| black_box(figures::table3(&cfg())).rows.len())
    });
    c.bench_function("fig05_kiviat", |b| {
        b.iter(|| black_box(figures::fig05(&cfg())).rows.len())
    });
}

fn bench_balance_figures(c: &mut Criterion) {
    // The sweep dominates; bench it once and each figure's projection.
    c.bench_function("hpcc_sweep", |b| {
        b.iter(|| black_box(figures::hpcc_sweeps(&cfg())).len())
    });
    let sweeps = figures::hpcc_sweeps(&cfg());
    c.bench_function("fig01_ring_vs_hpl", |b| {
        b.iter(|| black_box(figures::fig01_from(&sweeps)).series.len())
    });
    c.bench_function("fig02_ring_ratio", |b| {
        b.iter(|| black_box(figures::fig02_from(&sweeps)).series.len())
    });
    c.bench_function("fig03_stream_vs_hpl", |b| {
        b.iter(|| black_box(figures::fig03_from(&sweeps)).series.len())
    });
    c.bench_function("fig04_stream_ratio", |b| {
        b.iter(|| black_box(figures::fig04_from(&sweeps)).series.len())
    });
}

fn bench_hpcc_models(c: &mut Criterion) {
    let sx8 = machines::systems::nec_sx8();
    c.bench_function("model_hpl_sx8_64", |b| {
        b.iter(|| black_box(hpcc::sim::hpl(&sx8, 64)))
    });
    c.bench_function("model_ptrans_sx8_64", |b| {
        b.iter(|| black_box(hpcc::sim::ptrans(&sx8, 64)))
    });
    c.bench_function("model_gfft_sx8_64", |b| {
        b.iter(|| black_box(hpcc::sim::gfft(&sx8, 64)))
    });
    c.bench_function("model_random_ring_sx8_64", |b| {
        b.iter(|| black_box(hpcc::sim::random_ring(&sx8, 64)))
    });
}

criterion_group!(
    benches,
    bench_tables,
    bench_balance_figures,
    bench_hpcc_models
);
criterion_main!(benches);
