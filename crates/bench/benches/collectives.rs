//! Criterion benches of the `mp` runtime's collective algorithms on the
//! host — the algorithm-ablation companion to the simulated figures
//! (which collective algorithm wins at which size is exactly the
//! dispatch question the IMB figures probe).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const RANKS: usize = 8;

fn bench_allreduce_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_8r");
    for words in [1024usize, 131072] {
        g.throughput(Throughput::Bytes((words * 8) as u64));
        g.bench_with_input(
            BenchmarkId::new("recursive_doubling", words),
            &words,
            |bench, &w| {
                bench.iter(|| {
                    mp::run(RANKS, |comm| {
                        let mut buf = vec![1.0f64; w];
                        mp::coll::allreduce::recursive_doubling(comm, &mut buf, mp::Op::Sum);
                        black_box(buf[0])
                    })
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("rabenseifner", words),
            &words,
            |bench, &w| {
                bench.iter(|| {
                    mp::run(RANKS, |comm| {
                        let mut buf = vec![1.0f64; w];
                        mp::coll::allreduce::rabenseifner(comm, &mut buf, mp::Op::Sum);
                        black_box(buf[0])
                    })
                });
            },
        );
    }
    g.finish();
}

fn bench_bcast_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("bcast_8r");
    for words in [1024usize, 131072] {
        g.throughput(Throughput::Bytes((words * 8) as u64));
        g.bench_with_input(BenchmarkId::new("binomial", words), &words, |bench, &w| {
            bench.iter(|| {
                mp::run(RANKS, |comm| {
                    let mut buf = vec![1.0f64; w];
                    mp::coll::bcast::binomial(comm, &mut buf, 0);
                    black_box(buf[0])
                })
            });
        });
        g.bench_with_input(
            BenchmarkId::new("scatter_allgather", words),
            &words,
            |bench, &w| {
                bench.iter(|| {
                    mp::run(RANKS, |comm| {
                        let mut buf = vec![1.0f64; w];
                        mp::coll::bcast::scatter_allgather(comm, &mut buf, 0);
                        black_box(buf[0])
                    })
                });
            },
        );
    }
    g.finish();
}

fn bench_alltoall_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall_8r");
    for words in [64usize, 16384] {
        g.throughput(Throughput::Bytes((words * 8 * RANKS) as u64));
        for (name, f) in [
            (
                "pairwise",
                mp::coll::alltoall::pairwise::<f64> as fn(&mp::Comm, &[f64], &mut [f64]),
            ),
            ("bruck", mp::coll::alltoall::bruck::<f64>),
            ("linear", mp::coll::alltoall::linear::<f64>),
        ] {
            g.bench_with_input(BenchmarkId::new(name, words), &words, |bench, &w| {
                bench.iter(|| {
                    mp::run(RANKS, |comm| {
                        let send = vec![1.0f64; w * RANKS];
                        let mut recv = vec![0.0f64; w * RANKS];
                        f(comm, &send, &mut recv);
                        black_box(recv[0])
                    })
                });
            });
        }
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    c.bench_function("barrier_dissemination_8r_x100", |bench| {
        bench.iter(|| {
            mp::run(RANKS, |comm| {
                for _ in 0..100 {
                    comm.barrier();
                }
            })
        });
    });
}

criterion_group!(
    benches,
    bench_allreduce_algorithms,
    bench_bcast_algorithms,
    bench_alltoall_algorithms,
    bench_barrier
);
criterion_main!(benches);
