//! One criterion bench per IMB figure of the paper (Figs. 6-15): each
//! bench regenerates its figure at a reduced sweep scale, plus native
//! IMB measurements on the host for the headline 1 MB collectives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hpcbench::figures::{self, FigureConfig};
use hpcbench::Figure;

fn cfg() -> FigureConfig {
    FigureConfig {
        max_procs: 32,
        imb_bytes: 1 << 20,
        ..FigureConfig::default()
    }
}

#[allow(clippy::type_complexity)]
fn bench_imb_figures(c: &mut Criterion) {
    let figs: [(&str, fn(&FigureConfig) -> Figure); 10] = [
        ("fig06_barrier", figures::fig06),
        ("fig07_allreduce", figures::fig07),
        ("fig08_reduce", figures::fig08),
        ("fig09_reduce_scatter", figures::fig09),
        ("fig10_allgather", figures::fig10),
        ("fig11_allgatherv", figures::fig11),
        ("fig12_alltoall", figures::fig12),
        ("fig13_sendrecv", figures::fig13),
        ("fig14_exchange", figures::fig14),
        ("fig15_bcast", figures::fig15),
    ];
    for (name, f) in figs {
        c.bench_function(name, |b| b.iter(|| black_box(f(&cfg())).series.len()));
    }
}

fn bench_native_imb(c: &mut Criterion) {
    // Native counterparts: actual 1 MB collectives on host threads.
    for bench in [
        imb::Benchmark::Allreduce,
        imb::Benchmark::Alltoall,
        imb::Benchmark::Bcast,
    ] {
        let name = format!("native_{bench}_8r_1MiB");
        c.bench_function(&name, |b| {
            b.iter(|| {
                let m = imb::run_native(black_box(bench), 8, 1 << 20, 2);
                black_box(m.t_max_us())
            })
        });
    }
}

criterion_group!(benches, bench_imb_figures, bench_native_imb);
criterion_main!(benches);
