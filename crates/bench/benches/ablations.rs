//! Ablation benches for the modelling design choices DESIGN.md calls
//! out: topology oversubscription, collective-algorithm crossover points
//! and the SMP fast path. Each bench measures the simulation itself and
//! prints the modelled quantity through the criterion labels, so `cargo
//! bench` doubles as an ablation study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use machines::{ClusterSim, TopologyKind};
use mp::sched;

/// Fat-tree core blocking: how the 1 MB alltoall degrades as the core
/// thins (the Dell cluster's 3:1 configuration sits mid-sweep).
fn ablate_fat_tree_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fat_tree_blocking");
    for blocking in [1.0f64, 3.0, 9.0] {
        let mut m = machines::systems::dell_xeon();
        m.net.topology = TopologyKind::FatTree {
            arity: 18,
            blocking,
            blocking_from: 1,
        };
        let sched = sched::alltoall::pairwise(64, 1 << 20);
        g.bench_with_input(
            BenchmarkId::from_parameter(blocking as u64),
            &blocking,
            |b, _| {
                b.iter(|| {
                    let sim = ClusterSim::new(&m, 64);
                    black_box(sim.run_fresh(&sched).as_us())
                })
            },
        );
    }
    g.finish();
}

/// Clos spine width: the Myrinet oversubscription knob behind the
/// Opteron cluster's Fig. 2 collapse.
fn ablate_clos_spine(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_clos_spine");
    for spine in [1usize, 2, 4, 8] {
        let mut m = machines::systems::cray_opteron();
        m.net.topology = TopologyKind::Clos { radix: 16, spine };
        let perm = hpcc::ring::ring_permutation(64, 7);
        let sched = sched::p2p::random_ring(&perm, 2_000_000);
        g.bench_with_input(BenchmarkId::from_parameter(spine), &spine, |b, _| {
            b.iter(|| {
                let sim = ClusterSim::new(&m, 64);
                black_box(sim.run_fresh(&sched).as_us())
            })
        });
    }
    g.finish();
}

/// Allreduce algorithm crossover: recursive doubling (latency-optimal)
/// versus Rabenseifner (bandwidth-optimal) priced on the Xeon model at
/// sizes straddling the dispatcher's threshold.
fn ablate_allreduce_crossover(c: &mut Criterion) {
    let m = machines::systems::dell_xeon();
    let mut g = c.benchmark_group("ablation_allreduce_crossover");
    for bytes in [1024u64, 32 * 1024, 1 << 20] {
        for (name, sched) in [
            (
                "recursive_doubling",
                sched::allreduce::recursive_doubling(64, bytes),
            ),
            ("rabenseifner", sched::allreduce::rabenseifner(64, bytes)),
        ] {
            g.bench_with_input(BenchmarkId::new(name, bytes), &bytes, |b, _| {
                b.iter(|| {
                    let sim = ClusterSim::new(&m, 64);
                    black_box(sim.run_fresh(&sched).as_us())
                })
            });
        }
    }
    g.finish();
}

/// The SMP fast path: the same 1 MB Sendrecv ring priced with ranks
/// packed onto nodes (intra-heavy) versus spread one per node.
fn ablate_smp_fast_path(c: &mut Criterion) {
    let m = machines::systems::nec_sx8();
    let mut g = c.benchmark_group("ablation_smp_fast_path");
    // Packed: 8 ranks on one node; spread: 8 ranks over 8 nodes
    // (approximated by simulating 57+ ranks and using the first of each
    // node — here simply by comparing 8 ranks vs 64 ranks per-rank time).
    for (name, p) in [("packed_one_node", 8usize), ("spread_eight_nodes", 64)] {
        let sched = sched::p2p::sendrecv(p, 1 << 20);
        g.bench_function(name, |b| {
            b.iter(|| {
                let sim = ClusterSim::new(&m, p);
                black_box(sim.run_fresh(&sched).as_us())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_fat_tree_blocking,
    ablate_clos_spine,
    ablate_allreduce_crossover,
    ablate_smp_fast_path
);
criterion_main!(benches);
