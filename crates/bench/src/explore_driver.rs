//! The shared schedule-exploration driver behind the `mpcheck` CLI and
//! `campaign --explore`: runs the misuse gallery and small-world
//! virtual slices of every registry workload under the DPOR explorer,
//! merges the per-target reports into one `mpcheck-report-v2` document,
//! and writes each finding's replayable counterexample as an
//! `hpcbench-schedule-v1` trace file.
//!
//! `bench` deliberately has no library target, so the two binaries
//! include this module by path.

use std::io;
use std::path::{Path, PathBuf};

use harness::Mode;
use machines::{systems, Machine};
use mpcheck::{gallery, ExploreOptions, Report, Schedule, ScheduleStats};

/// What to explore and how hard.
pub struct ExplorePlan {
    /// Run only the misuse gallery, skipping the workload slices.
    pub gallery_only: bool,
    /// Registry-name filter for the workload slices (`None` = all).
    pub workloads: Option<Vec<String>>,
    /// Machine model the virtual slices run on.
    pub machine: Machine,
    /// Largest world a workload slice may use; each workload explores at
    /// its smallest admissible world in `2..=max_procs`.
    pub max_procs: usize,
    /// Message size handed to sized workloads.
    pub bytes: u64,
    /// Explorer budget and base run settings, shared by every target.
    pub opts: ExploreOptions,
}

impl Default for ExplorePlan {
    fn default() -> ExplorePlan {
        ExplorePlan {
            gallery_only: false,
            workloads: None,
            machine: systems::dell_xeon(),
            max_procs: 4,
            bytes: 1024,
            opts: ExploreOptions {
                max_schedules: 32,
                ..ExploreOptions::default()
            },
        }
    }
}

/// The merged outcome of an exploration sweep.
pub struct ExploreSummary {
    /// All targets' findings and schedule accounting, merged.
    pub report: Report,
    /// Acceptance failures: unmet gallery expectations, a dirty clean
    /// control, or workload findings. Empty means the sweep passed.
    pub failures: Vec<String>,
    /// Counterexample trace files written under `<out>/schedules/`.
    pub traces: Vec<PathBuf>,
}

/// Runs the sweep described by `plan`, writing counterexample traces
/// under `out_dir/schedules/`.
pub fn run(plan: &ExplorePlan, out_dir: &Path) -> io::Result<ExploreSummary> {
    let schedules_dir = out_dir.join("schedules");
    std::fs::create_dir_all(&schedules_dir)?;
    let mut summary = ExploreSummary {
        report: Report {
            schedules: Some(ScheduleStats {
                exhaustive: true,
                ..ScheduleStats::default()
            }),
            ..Report::default()
        },
        failures: Vec::new(),
        traces: Vec::new(),
    };

    println!("mpcheck explore: misuse gallery");
    for entry in gallery::entries() {
        let report = entry.explore(&plan.opts);
        match entry.expect {
            Some(class) if !report.findings.iter().any(|f| f.class == class) => {
                summary.failures.push(format!(
                    "{}: expected a {class} finding, explorer found none",
                    entry.target()
                ));
            }
            None if !report.clean() => {
                summary.failures.push(format!(
                    "{}: clean control produced {} finding(s)",
                    entry.target(),
                    report.findings.len()
                ));
            }
            _ => {}
        }
        absorb(&mut summary, &entry.target(), report, &schedules_dir)?;
    }

    if !plan.gallery_only {
        println!(
            "mpcheck explore: workload slices on {} (worlds of 2..={} ranks)",
            plan.machine.name, plan.max_procs
        );
        let reg = hpcbench::registry();
        for workload in reg.iter() {
            let name = workload.meta.name;
            if let Some(filter) = &plan.workloads {
                if !filter.iter().any(|n| n == name) {
                    continue;
                }
            }
            if !workload.supports(Mode::Virtual) {
                println!("  {name}: no virtual closure, skipped");
                continue;
            }
            let admissible = (2..=plan.max_procs).find(|&p| workload.meta.admits(p, Mode::Virtual));
            let Some(procs) = admissible else {
                println!(
                    "  {name}: no admissible world within {} ranks, skipped",
                    plan.max_procs
                );
                continue;
            };
            let bytes = workload.meta.sized.then_some(plan.bytes);
            let report = harness::explore::explore_workload(
                workload,
                &plan.machine,
                procs,
                bytes,
                &plan.opts,
            );
            if !report.clean() {
                summary.failures.push(format!(
                    "workload {name}: {} finding(s) under exploration",
                    report.findings.len()
                ));
            }
            let target = harness::explore::workload_target(name, &plan.machine, procs, bytes);
            absorb(&mut summary, &target, report, &schedules_dir)?;
        }
    }
    Ok(summary)
}

/// Merges one target's report into the sweep summary, printing its
/// one-line accounting and writing its counterexample traces.
fn absorb(
    summary: &mut ExploreSummary,
    target: &str,
    report: Report,
    schedules_dir: &Path,
) -> io::Result<()> {
    let stats = report.schedules.unwrap_or_default();
    println!(
        "  {target}: {} finding(s), {} visited, {} pruned{}",
        report.findings.len(),
        stats.visited,
        stats.pruned,
        if stats.exhaustive {
            ""
        } else {
            " (budget-limited)"
        }
    );
    for (i, finding) in report.findings.iter().enumerate() {
        if let Some(cx) = &finding.counterexample {
            let path =
                schedules_dir.join(format!("{}-{}-{i}.json", sanitize(target), finding.class));
            std::fs::write(&path, cx)?;
            summary.traces.push(path);
        }
    }
    let merged = &mut summary.report;
    merged.runs += report.runs;
    merged.events += report.events;
    merged.dropped += report.dropped;
    for seed in report.seeds {
        if !merged.seeds.contains(&seed) {
            merged.seeds.push(seed);
        }
    }
    if let Some(m) = merged.schedules.as_mut() {
        m.visited += stats.visited;
        m.pruned += stats.pruned;
        m.bounded_skips += stats.bounded_skips;
        m.exhaustive &= stats.exhaustive;
    }
    merged.findings.extend(report.findings);
    Ok(())
}

/// Replays one `hpcbench-schedule-v1` trace file, resolving its target
/// against the gallery or the workload registry.
pub fn replay_file(path: &Path) -> Result<Report, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let schedule = Schedule::from_json(&text)?;
    if schedule.target.starts_with("gallery:") {
        let entry = gallery::find(&schedule.target)
            .ok_or_else(|| format!("unknown gallery entry {:?}", schedule.target))?;
        let body = entry.body;
        return mpcheck::replay(&schedule, mpcheck::Settings::default(), move |comm| {
            body(comm)
        });
    }
    let (name, machine_name, _, _) = harness::explore::parse_target(&schedule.target)
        .ok_or_else(|| format!("unrecognized schedule target {:?}", schedule.target))?;
    let reg = hpcbench::registry();
    let workload = reg
        .get(&name)
        .ok_or_else(|| format!("unknown workload {name:?}"))?;
    let machine = systems::all_variants()
        .into_iter()
        .find(|m| m.name == machine_name)
        .ok_or_else(|| format!("unknown machine {machine_name:?}"))?;
    harness::explore::replay_workload(workload, &machine, &schedule, &mpcheck::Settings::default())
}

/// Filesystem-safe rendering of a schedule target label.
fn sanitize(target: &str) -> String {
    target
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}
