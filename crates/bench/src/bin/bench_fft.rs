//! Perf baseline for the FFT subsystem: times the table-driven
//! cache-blocked local kernel and the distributed G-FFT against the
//! seed's radix-2 implementations (reproduced here verbatim as the
//! frozen baseline) and writes `BENCH_fft.json`.
//!
//! ```text
//! cargo run -p bench --bin bench_fft --release             # writes BENCH_fft.json
//! cargo run -p bench --bin bench_fft --release -- --smoke  # fast CI mode
//! cargo run -p bench --bin bench_fft --release -- --out F
//! ```
//!
//! Measurements are *interleaved within the same window*: every
//! repetition times the seed kernel and the current kernel back to back
//! on the same data, so frequency scaling or background load biases both
//! sides equally and the speedup column stays honest.

use harness::{metrics::MetricSink, BestOf, Runner};
use hpcc::fft_dist::{self, FftConfig};
use hpcc::kernels::fft::{fft, fft_flops, Complex};
use mp::Comm;

// ----------------------------------------------------------------------
// The seed kernels (PR 0), frozen as the fixed reference point.
// ----------------------------------------------------------------------

/// The seed's local FFT: iterative radix-2 with a `w = w * wlen` twiddle
/// recurrence per butterfly run.
fn seed_fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// The seed's local DIF stages: `sin`/`cos` evaluated inside the inner
/// butterfly loop.
fn seed_dif_local(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = n;
    while len >= 2 {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2];
                data[start + k] = a + b;
                data[start + k + len / 2] = (a - b) * Complex::cis(ang * k as f64);
            }
        }
        len >>= 1;
    }
}

/// The seed's distributed transform: typed `sendrecv` with a fresh
/// flatten per stage, trig in the cross-rank butterflies.
fn seed_distributed_fft(comm: &Comm, local: &mut [Complex], inverse: bool) {
    let p = comm.size();
    let me = comm.rank();
    let ln = local.len();
    let n = ln * p;
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut flat: Vec<f64> = vec![0.0; 2 * ln];
    let mut incoming = vec![0.0f64; 2 * ln];
    let mut span = n;
    while span > ln {
        let dist_ranks = span / 2 / ln;
        let partner = me ^ dist_ranks;
        for (i, c) in local.iter().enumerate() {
            flat[2 * i] = c.re;
            flat[2 * i + 1] = c.im;
        }
        comm.sendrecv(&flat, partner, &mut incoming, partner, 19);
        let low = me & dist_ranks == 0;
        let ang = sign * 2.0 * std::f64::consts::PI / span as f64;
        for l in 0..ln {
            let other = Complex::new(incoming[2 * l], incoming[2 * l + 1]);
            if low {
                local[l] = local[l] + other;
            } else {
                let g = me * ln + l;
                let k = g % (span / 2);
                local[l] = (other - local[l]) * Complex::cis(ang * k as f64);
            }
        }
        span /= 2;
    }
    seed_dif_local(local, inverse);
}

// ----------------------------------------------------------------------
// Harness
// ----------------------------------------------------------------------

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Complex::new((t * 0.7).sin() + 0.3, (t * 1.3).cos() * 0.5)
        })
        .collect()
}

fn main() {
    let mut out_path = String::from("BENCH_fft.json");
    let mut runner = Runner::standard();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => runner = Runner::smoke(),
            other => {
                eprintln!("unknown argument: {other}\nusage: bench_fft [--smoke] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    let smoke = runner.policy.is_smoke();

    let mut sink = MetricSink::new("hpcc-fft");

    // --- Local FFT: table-driven kernel vs the seed radix-2 ------------
    let local_bits: &[u32] = if smoke {
        &[10, 12, 14]
    } else {
        &[10, 12, 14, 16, 18, 20, 22]
    };
    for &bits in local_bits {
        let n = 1usize << bits;
        let input = signal(n);
        let mut work = input.clone();
        let reps = runner.policy.best_reps((1 << 25 >> bits).clamp(6, 50));

        // Correctness cross-check once per size before timing.
        let mut a = input.clone();
        seed_fft(&mut a, false);
        let mut b = input.clone();
        fft(&mut b, false);
        let worst = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst < 1e-6 * n as f64,
            "kernels disagree at n=2^{bits}: {worst}"
        );

        // Interleaved same-window best-of: each repetition times both
        // seed kernels then the table kernel back to back on the same
        // buffer. `seed_fft` is the radix-2 twiddle-recurrence baseline;
        // `seed_dif_local` is the trig-in-the-inner-loop kernel the
        // cross-rank G-FFT stages were built on.
        let mut best = BestOf::new(3);
        for _ in 0..reps {
            work.copy_from_slice(&input);
            best.time(0, || seed_fft(&mut work, false));

            work.copy_from_slice(&input);
            best.time(1, || seed_dif_local(&mut work, false));

            work.copy_from_slice(&input);
            best.time(2, || fft(&mut work, false));
        }
        let (t_seed, t_seed_dif, t_table) = (best.secs(0), best.secs(1), best.secs(2));
        let flops = fft_flops(n);
        println!(
            "fft n=2^{bits}: table {:.2} Gflop/s, seed {:.2} Gflop/s ({:.2}x), \
             seed-dif {:.2} Gflop/s ({:.2}x)",
            flops / t_table / 1e9,
            flops / t_seed / 1e9,
            t_seed / t_table,
            flops / t_seed_dif / 1e9,
            t_seed_dif / t_table
        );
        sink.push(
            format!("fft_table_log2_{bits}_gflops"),
            flops / t_table / 1e9,
            "Gflop/s",
        );
        sink.push(
            format!("fft_seed_log2_{bits}_gflops"),
            flops / t_seed / 1e9,
            "Gflop/s",
        );
        sink.push(
            format!("fft_speedup_vs_seed_log2_{bits}"),
            t_seed / t_table,
            "x",
        );
        sink.push(
            format!("fft_seed_dif_log2_{bits}_gflops"),
            flops / t_seed_dif / 1e9,
            "Gflop/s",
        );
        sink.push(
            format!("fft_speedup_vs_seed_dif_log2_{bits}"),
            t_seed_dif / t_table,
            "x",
        );
    }

    // --- G-FFT: distributed transform at p = 1, 2, 4, 8 ----------------
    let gfft_bits: u32 = if smoke { 14 } else { 20 };
    for p in [1usize, 2, 4, 8] {
        let n = 1usize << gfft_bits;
        let ln = n / p;
        let reps = runner.policy.best_reps(5);

        // Interleaved seed-vs-current timing of the bare transform.
        let times = mp::run(p, move |comm| {
            let base = (comm.rank() * ln) as u64;
            let input: Vec<Complex> = (0..ln as u64)
                .map(|l| {
                    let t = (base + l) as f64;
                    Complex::new((t * 0.7).sin() + 0.3, (t * 1.3).cos() * 0.5)
                })
                .collect();
            let mut work = input.clone();
            let mut best = BestOf::new(2);
            for _ in 0..reps {
                work.copy_from_slice(&input);
                best.time_collective(comm, 0, || seed_distributed_fft(comm, &mut work, false));

                work.copy_from_slice(&input);
                best.time_collective(comm, 1, || {
                    fft_dist::distributed_fft(comm, &mut work, false)
                });
            }
            (best.secs(0), best.secs(1))
        });
        let (t_seed, t_cur) = times[0];
        let flops = fft_flops(n);
        println!(
            "gfft p={p} n=2^{gfft_bits}: table {:.2} Gflop/s, seed {:.2} Gflop/s, speedup {:.2}x",
            flops / t_cur / 1e9,
            flops / t_seed / 1e9,
            t_seed / t_cur
        );
        sink.push(format!("gfft_p{p}_gflops"), flops / t_cur / 1e9, "Gflop/s");
        sink.push(
            format!("gfft_seed_p{p}_gflops"),
            flops / t_seed / 1e9,
            "Gflop/s",
        );
        sink.push(format!("gfft_speedup_vs_seed_p{p}"), t_seed / t_cur, "x");

        // Full benchmark run (with its distributed round-trip check) for
        // the reported error bound.
        let results = mp::run(p, move |comm| {
            fft_dist::run(comm, &FftConfig { log2_n: gfft_bits })
        });
        let r = results[0];
        assert!(
            r.passed,
            "G-FFT p={p} failed verification: max error {}",
            r.max_error
        );
        println!("gfft p={p} verification: max error {:.3e}", r.max_error);
        sink.push(format!("gfft_p{p}_max_error"), r.max_error, "abs");
    }

    sink.write(&out_path);
    println!("wrote {out_path}");
}
