//! The schedule-space analysis CLI: a DPOR explorer over the coop
//! scheduler, with replayable counterexamples.
//!
//! ```text
//! cargo run -p bench --bin mpcheck -- explore                   # gallery + workload slices
//! cargo run -p bench --bin mpcheck -- explore --gallery-only    # misuse gallery alone
//! cargo run -p bench --bin mpcheck -- explore --workloads A,B   # registry-name filter
//! cargo run -p bench --bin mpcheck -- explore --machine NAME    # model for the slices
//! cargo run -p bench --bin mpcheck -- explore --max-procs N     # slice world cap (default 4)
//! cargo run -p bench --bin mpcheck -- explore --bytes N         # sized-workload bytes
//! cargo run -p bench --bin mpcheck -- explore --max-schedules N # per-target budget
//! cargo run -p bench --bin mpcheck -- explore --preemption-bound N
//! cargo run -p bench --bin mpcheck -- explore --out DIR         # artefacts (default out)
//! cargo run -p bench --bin mpcheck -- replay FILE               # re-run one counterexample
//! ```
//!
//! `explore` enumerates meaningfully distinct interleavings of every
//! target — no random seeds — and fails (exit 1) when a gallery entry
//! misses its expected finding class, the clean control turns up a
//! finding, or any workload slice produces a finding. The merged
//! `mpcheck-report-v2` document lands at `<out>/mpcheck-explore.json`
//! and every finding's `hpcbench-schedule-v1` counterexample at
//! `<out>/schedules/`, where `replay` re-executes it deterministically.

#[path = "../explore_driver.rs"]
mod explore_driver;

use std::path::PathBuf;

use explore_driver::ExplorePlan;
use machines::systems;

fn usage() -> ! {
    eprintln!(
        "usage: mpcheck explore [--gallery-only] [--workloads A,B] [--machine NAME] \
         [--max-procs N] [--bytes N] [--max-schedules N] [--preemption-bound N] [--out DIR]\n\
         \x20      mpcheck replay FILE"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("explore") => explore(args),
        Some("replay") => replay(args),
        _ => usage(),
    }
}

fn explore(mut args: impl Iterator<Item = String>) {
    let mut plan = ExplorePlan::default();
    let mut out_dir = PathBuf::from("out");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--gallery-only" => plan.gallery_only = true,
            "--workloads" => {
                let list = args.next().expect("--workloads needs a,b,c names");
                plan.workloads = Some(list.split(',').map(str::to_string).collect());
            }
            "--machine" => {
                let name = args.next().expect("--machine needs a model name");
                plan.machine = systems::all_variants()
                    .into_iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| {
                        let known: Vec<&str> =
                            systems::all_variants().iter().map(|m| m.name).collect();
                        panic!("unknown machine {name:?}; known: {}", known.join(", "))
                    });
            }
            "--max-procs" => {
                plan.max_procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&p| p >= 2)
                    .expect("--max-procs needs a world cap >= 2");
            }
            "--bytes" => {
                plan.bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--bytes needs a message size");
            }
            "--max-schedules" => {
                plan.opts.max_schedules = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--max-schedules needs a budget >= 1");
            }
            "--preemption-bound" => {
                plan.opts.preemption_bound = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--preemption-bound needs a count"),
                );
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a path")),
            _ => usage(),
        }
    }

    let summary = explore_driver::run(&plan, &out_dir).expect("write exploration artefacts");
    print!("{}", summary.report);
    let report_path = out_dir.join("mpcheck-explore.json");
    std::fs::write(&report_path, summary.report.to_json()).expect("write exploration report");
    println!("wrote {}", report_path.display());
    println!(
        "wrote {} counterexample trace(s) under {}",
        summary.traces.len(),
        out_dir.join("schedules").display()
    );
    if !summary.failures.is_empty() {
        for failure in &summary.failures {
            eprintln!("mpcheck explore: {failure}");
        }
        std::process::exit(1);
    }
}

fn replay(mut args: impl Iterator<Item = String>) {
    let Some(path) = args.next() else { usage() };
    if args.next().is_some() {
        usage();
    }
    match explore_driver::replay_file(std::path::Path::new(&path)) {
        Ok(report) => {
            print!("{report}");
            println!("replay: schedule reproduced without divergence");
        }
        Err(e) => {
            eprintln!("mpcheck replay: {e}");
            std::process::exit(1);
        }
    }
}
