//! Scheduler benchmark for the cooperative rank runtime: measures how
//! fast the run queue can switch between rank tasks — the capacity
//! limit behind 100k-rank virtual worlds — and writes
//! `BENCH_sched.json`, so scheduler regressions are caught the same way
//! `bench_mp` pins the transport paths.
//!
//! ```text
//! cargo run -p bench --bin bench_sched --release                 # writes BENCH_sched.json
//! cargo run -p bench --bin bench_sched --release -- --smoke      # fast CI mode
//! cargo run -p bench --bin bench_sched --release -- --baseline F # merge a prior run
//! ```
//!
//! Three metrics, all in events per second:
//!
//! * `spawn_teardown_ranks_per_s` — world construction: spawn a large
//!   world of trivial rank tasks, run it to completion, tear it down.
//! * `ring_switches_per_s` — steady-state switching under load: every
//!   rank of a ring passes a token; each receive suspends the task and
//!   each delivery resumes it, so switches = ranks x rounds.
//! * `pingpong_switches_per_s` — the two-task minimum: the pure
//!   suspend/resume round trip without fan-out effects.

use harness::{metrics, Stopwatch};

/// One context switch per (rank, round): each receive parks the task
/// until its predecessor's token lands.
fn ring_switch_rate(n: usize, rounds: usize) -> f64 {
    let sw = Stopwatch::start();
    mp::run_coop(n, move |comm| async move {
        let r = comm.rank();
        let n = comm.size();
        let mut token = [r as u64];
        for _ in 0..rounds {
            comm.send(&token, (r + 1) % n, 7);
            comm.recv_async(&mut token, (r + n - 1) % n, 7).await;
        }
    });
    (n * rounds) as f64 / sw.elapsed_secs()
}

/// Two ranks bouncing one word: two switches per iteration.
fn pingpong_switch_rate(iters: usize) -> f64 {
    let sw = Stopwatch::start();
    mp::run_coop(2, move |comm| async move {
        let mut buf = [0u64];
        for _ in 0..iters {
            if comm.rank() == 0 {
                comm.send(&buf, 1, 9);
                comm.recv_async(&mut buf, 1, 9).await;
            } else {
                comm.recv_async(&mut buf, 0, 9).await;
                comm.send(&buf, 0, 9);
            }
        }
    });
    (2 * iters) as f64 / sw.elapsed_secs()
}

/// Whole-world lifecycle rate for trivial rank tasks.
fn spawn_teardown_rate(n: usize) -> f64 {
    let sw = Stopwatch::start();
    mp::run_coop(n, |comm| async move { comm.rank() });
    n as f64 / sw.elapsed_secs()
}

fn best_of(reps: usize, f: impl Fn() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(0.0f64, f64::max)
}

fn main() {
    let mut out_path = String::from("BENCH_sched.json");
    let mut baseline_path: Option<String> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: bench_sched [--smoke] [--out FILE] [--baseline FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let (world, ring_n, rounds, iters, reps) = if smoke {
        (4096, 256, 50, 2_000, 2)
    } else {
        (65_536, 1024, 200, 20_000, 3)
    };

    let mut sink = metrics::MetricSink::new("coop-sched");

    let spawn = best_of(reps, || spawn_teardown_rate(world));
    println!("spawn+teardown {world} ranks: {spawn:.0} ranks/s");
    sink.push("spawn_teardown_ranks_per_s", spawn, "ranks/s");

    let ring = best_of(reps, || ring_switch_rate(ring_n, rounds));
    println!("ring {ring_n}x{rounds}: {ring:.0} switches/s");
    sink.push("ring_switches_per_s", ring, "switch/s");

    let pp = best_of(reps, || pingpong_switch_rate(iters));
    println!("pingpong x{iters}: {pp:.0} switches/s");
    sink.push("pingpong_switches_per_s", pp, "switch/s");

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = metrics::parse_baseline(&text);
        for (name, speedup) in sink.merge_baseline(&baseline) {
            println!("{name}: {speedup:.2}x vs baseline");
        }
    }

    sink.write(&out_path);
    println!("wrote {out_path}");
}
