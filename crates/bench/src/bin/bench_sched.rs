//! Scheduler benchmark for the cooperative rank runtime: measures how
//! fast the run queue can switch between rank tasks — the capacity
//! limit behind 100k-rank virtual worlds — and writes
//! `BENCH_sched.json`, so scheduler regressions are caught the same way
//! `bench_mp` pins the transport paths.
//!
//! ```text
//! cargo run -p bench --bin bench_sched --release                 # writes BENCH_sched.json
//! cargo run -p bench --bin bench_sched --release -- --smoke      # fast CI mode
//! cargo run -p bench --bin bench_sched --release -- --baseline F # merge a prior run
//! ```
//!
//! Five metrics, all in events per second:
//!
//! * `spawn_teardown_ranks_per_s` — world construction: spawn a large
//!   world of trivial rank tasks, run it to completion, tear it down.
//! * `ring_switches_per_s` — steady-state switching under load: every
//!   rank of a ring passes a token; each receive suspends the task and
//!   each delivery resumes it, so switches = ranks x rounds.
//! * `pingpong_switches_per_s` — the two-task minimum: the pure
//!   suspend/resume round trip without fan-out effects.
//! * `timeline_reserves_per_s` — `simnet::Resource` first-fit
//!   reservations under the fragmenting mid-timeline backfill pattern
//!   high-rank virtual worlds produce on hot resources.
//! * `timeline_naive_reserves_per_s` — the same pattern through the
//!   frozen flat sorted-`Vec` algorithm (the pre-chunking structure),
//!   kept as the before lane so the speedup stays visible in
//!   `BENCH_sched.json`.

use harness::{metrics, Stopwatch};
use simnet::{Resource, Time};

/// One context switch per (rank, round): each receive parks the task
/// until its predecessor's token lands.
fn ring_switch_rate(n: usize, rounds: usize) -> f64 {
    let sw = Stopwatch::start();
    mp::run_coop(n, move |comm| async move {
        let r = comm.rank();
        let n = comm.size();
        let mut token = [r as u64];
        for _ in 0..rounds {
            comm.send(&token, (r + 1) % n, 7);
            comm.recv_async(&mut token, (r + n - 1) % n, 7).await;
        }
    });
    (n * rounds) as f64 / sw.elapsed_secs()
}

/// Two ranks bouncing one word: two switches per iteration.
fn pingpong_switch_rate(iters: usize) -> f64 {
    let sw = Stopwatch::start();
    mp::run_coop(2, move |comm| async move {
        let mut buf = [0u64];
        for _ in 0..iters {
            if comm.rank() == 0 {
                comm.send(&buf, 1, 9);
                comm.recv_async(&mut buf, 1, 9).await;
            } else {
                comm.recv_async(&mut buf, 0, 9).await;
                comm.send(&buf, 0, 9);
            }
        }
    });
    (2 * iters) as f64 / sw.elapsed_secs()
}

/// Whole-world lifecycle rate for trivial rank tasks.
fn spawn_teardown_rate(n: usize) -> f64 {
    let sw = Stopwatch::start();
    mp::run_coop(n, |comm| async move { comm.rank() });
    n as f64 / sw.elapsed_secs()
}

/// One deterministic LCG step (the reservation pattern generator).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// The ready time / size of the `i`-th synthetic reservation: loosely
/// increasing ready times with a wide jitter window, the fragmentation
/// and mid-timeline backfill mix profiled on hot resources of 16k-rank
/// virtual worlds (interval lists grow into the tens of thousands and
/// most reservations land mid-timeline).
fn reservation(i: u64, state: &mut u64) -> (f64, u64) {
    let s = lcg(state);
    let jitter_us = ((s >> 33) % 1_000_000) as f64;
    (i as f64 * 0.5 + jitter_us, 1 + (s >> 55) % 4096)
}

/// First-fit reservation rate of the production timeline.
fn timeline_reserve_rate(n: usize) -> f64 {
    let mut r = Resource::new(1e9);
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let sw = Stopwatch::start();
    for i in 0..n as u64 {
        let (ready_us, bytes) = reservation(i, &mut state);
        r.reserve(Time::from_us(ready_us), bytes);
    }
    n as f64 / sw.elapsed_secs()
}

/// The frozen flat sorted-`Vec` first-fit (verbatim, the pre-chunking
/// structure), the "before" lane. `simnet`'s tests pin the production
/// timeline to this algorithm grant-for-grant; here it pins the
/// speedup.
fn naive_reserve_rate(n: usize) -> f64 {
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let sw = Stopwatch::start();
    for i in 0..n as u64 {
        let (ready_us, bytes) = reservation(i, &mut state);
        let ready = ready_us * 1e-6;
        let service = bytes as f64 / 1e9;
        let mut idx = intervals.partition_point(|iv| iv.1 <= ready);
        let mut candidate = ready;
        while idx < intervals.len() {
            let (s, e) = intervals[idx];
            if s >= candidate + service {
                break;
            }
            candidate = candidate.max(e);
            idx += 1;
        }
        let start = candidate;
        let end = start + service;
        let merges_prev = idx > 0 && intervals[idx - 1].1 == start;
        let merges_next = idx < intervals.len() && intervals[idx].0 == end;
        match (merges_prev, merges_next) {
            (true, true) => {
                intervals[idx - 1].1 = intervals[idx].1;
                intervals.remove(idx);
            }
            (true, false) => intervals[idx - 1].1 = end,
            (false, true) => intervals[idx].0 = start,
            (false, false) => intervals.insert(idx, (start, end)),
        }
    }
    n as f64 / sw.elapsed_secs()
}

fn best_of(reps: usize, f: impl Fn() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(0.0f64, f64::max)
}

fn main() {
    let mut out_path = String::from("BENCH_sched.json");
    let mut baseline_path: Option<String> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: bench_sched [--smoke] [--out FILE] [--baseline FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let (world, ring_n, rounds, iters, reps, reserves) = if smoke {
        (4096, 256, 50, 2_000, 2, 50_000)
    } else {
        (65_536, 1024, 200, 20_000, 3, 200_000)
    };

    let mut sink = metrics::MetricSink::new("coop-sched");

    let spawn = best_of(reps, || spawn_teardown_rate(world));
    println!("spawn+teardown {world} ranks: {spawn:.0} ranks/s");
    sink.push("spawn_teardown_ranks_per_s", spawn, "ranks/s");

    let ring = best_of(reps, || ring_switch_rate(ring_n, rounds));
    println!("ring {ring_n}x{rounds}: {ring:.0} switches/s");
    sink.push("ring_switches_per_s", ring, "switch/s");

    let pp = best_of(reps, || pingpong_switch_rate(iters));
    println!("pingpong x{iters}: {pp:.0} switches/s");
    sink.push("pingpong_switches_per_s", pp, "switch/s");

    let timeline = best_of(reps, || timeline_reserve_rate(reserves));
    println!("timeline x{reserves}: {timeline:.0} reserves/s");
    sink.push("timeline_reserves_per_s", timeline, "reserve/s");

    let naive = best_of(reps, || naive_reserve_rate(reserves));
    println!(
        "timeline (naive vec) x{reserves}: {naive:.0} reserves/s ({:.1}x slower)",
        timeline / naive
    );
    sink.push("timeline_naive_reserves_per_s", naive, "reserve/s");

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = metrics::parse_baseline(&text);
        for (name, speedup) in sink.merge_baseline(&baseline) {
            println!("{name}: {speedup:.2}x vs baseline");
        }
    }

    sink.write(&out_path);
    println!("wrote {out_path}");
}
