//! The campaign driver: one invocation runs {machines x modes x
//! workloads x proc counts} through the unified workload registry and
//! writes the resulting record stream as JSON.
//!
//! ```text
//! cargo run -p bench --bin campaign --release               # paper campaign + figures
//! cargo run -p bench --bin campaign -- --smoke              # fast CI sweep, all 3 modes
//! cargo run -p bench --bin campaign -- --records FILE       # records JSON path
//! cargo run -p bench --bin campaign -- --out DIR            # artefact directory
//! cargo run -p bench --bin campaign -- --no-figures         # records only
//! cargo run -p bench --bin campaign -- --check              # mpcheck-verify native runs
//! cargo run -p bench --bin campaign -- --check-report FILE  # mpcheck report JSON path
//! cargo run -p bench --bin campaign -- --high-rank N        # virtual slice at N coop ranks
//! ```
//!
//! Full mode replays the paper's simulated campaign over every machine
//! variant and regenerates all tables and figures from the same registry
//! (`hpcbench::output::write_all`). Smoke mode exercises every execution
//! path — native, simulated and virtual — on a small cross product so CI
//! proves all three routes stay wired through the registry and Runner.

use std::path::PathBuf;

use harness::{records_json, Mode, ProcGrid, Record, RunPlan, Runner};
use hpcbench::figures::FigureConfig;
use hpcbench::output::{self, OutputConfig};
use machines::systems;

fn smoke_records(check: bool) -> (Vec<Record>, Option<mpcheck::Report>) {
    let reg = hpcbench::registry();
    let plan = RunPlan {
        modes: vec![Mode::Native, Mode::Simulated, Mode::Virtual],
        machines: vec![systems::dell_xeon(), systems::nec_sx8()],
        procs: ProcGrid::List(vec![2, 4]),
        bytes: vec![1024, 65536],
        workloads: None,
        runner: Runner::smoke(),
    };
    if check {
        let (records, report) = plan.execute_checked(&reg, mpcheck::Settings::default());
        (records, Some(report))
    } else {
        (plan.execute(&reg), None)
    }
}

/// The high-rank virtual slice: real benchmark code at `procs`
/// cooperative ranks on the exascale extension model — worlds far past
/// the host's OS-thread budget. Barrier and the rooted collectives keep
/// per-rank state O(bytes), so even 100k-rank worlds fit on one host.
fn highrank_records(procs: usize) -> Vec<Record> {
    let reg = hpcbench::registry();
    let plan = RunPlan {
        modes: vec![Mode::Virtual],
        machines: vec![systems::exascale_cluster()],
        procs: ProcGrid::List(vec![procs]),
        bytes: vec![1024],
        workloads: Some(vec!["PingPong", "Barrier", "Bcast", "Allreduce"]),
        runner: Runner::fixed(1),
    };
    plan.execute(&reg)
}

fn paper_records(max_procs: usize, check: bool) -> (Vec<Record>, Option<mpcheck::Report>) {
    let reg = hpcbench::registry();
    let plan = RunPlan {
        modes: vec![Mode::Simulated],
        machines: systems::all_variants(),
        procs: ProcGrid::per_workload(move |m, _| {
            let m = m.expect("simulated grids resolve per machine");
            let limit = m.max_cpus.min(max_procs);
            let mut grid = Vec::new();
            let mut p = 2;
            while p <= limit {
                grid.push(p);
                p *= 2;
            }
            // The paper's odd installation endpoint (SX-8 at 576 CPUs).
            if m.max_cpus == 576 && limit >= 576 {
                grid.push(576);
            }
            grid
        }),
        bytes: vec![simnet::units::MIB],
        workloads: None,
        runner: Runner::standard(),
    };
    if check {
        let (records, report) = plan.execute_checked(&reg, mpcheck::Settings::default());
        (records, Some(report))
    } else {
        (plan.execute(&reg), None)
    }
}

fn main() {
    let mut out_dir = PathBuf::from("out");
    let mut records_path: Option<PathBuf> = None;
    let mut check_report_path: Option<PathBuf> = None;
    let mut smoke = false;
    let mut check = false;
    let mut with_figures = true;
    let mut max_procs = 2048usize;
    // Smoke runs a 16384-rank virtual slice by default; `--high-rank N`
    // raises it (65536+ for the scaling acceptance run) or adds the
    // slice to a full campaign. 0 disables it.
    let mut high_rank: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--check-report" => {
                check = true;
                check_report_path = Some(PathBuf::from(
                    args.next().expect("--check-report needs a path"),
                ));
            }
            "--no-figures" => with_figures = false,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a path")),
            "--records" => {
                records_path = Some(PathBuf::from(args.next().expect("--records needs a path")));
            }
            "--max-procs" => {
                max_procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-procs needs a number");
            }
            "--high-rank" => {
                high_rank = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--high-rank needs a rank count (0 disables the slice)"),
                );
            }
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: campaign [--smoke] [--check] [--no-figures] [--max-procs N] \
                     [--high-rank N] [--out DIR] [--records FILE] [--check-report FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let (mut records, check_report) = if smoke {
        println!("campaign --smoke: native + simulated + virtual on a reduced cross product");
        smoke_records(check)
    } else {
        println!(
            "campaign: simulated paper sweep over every machine variant (max_procs = {max_procs})"
        );
        paper_records(max_procs, check)
    };

    let high_rank = high_rank.unwrap_or(if smoke { 16_384 } else { 0 });
    if high_rank > 0 {
        println!("high-rank slice: virtual IMB at {high_rank} cooperative ranks");
        records.extend(highrank_records(high_rank));
    }

    let mut by_mode = [0usize; 3];
    for r in &records {
        by_mode[r.mode as usize] += 1;
    }
    println!(
        "{} records ({} native, {} simulated, {} virtual), all passed: {}",
        records.len(),
        by_mode[Mode::Native as usize],
        by_mode[Mode::Simulated as usize],
        by_mode[Mode::Virtual as usize],
        records.iter().all(|r| r.passed)
    );
    assert!(
        records.iter().all(|r| r.passed),
        "campaign contains failed records"
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let records_path = records_path.unwrap_or_else(|| out_dir.join("records.json"));
    std::fs::write(&records_path, records_json(&records)).expect("write records json");
    println!("wrote {}", records_path.display());

    if let Some(report) = check_report {
        print!("{report}");
        let report_path = check_report_path.unwrap_or_else(|| out_dir.join("mpcheck-report.json"));
        std::fs::write(&report_path, report.to_json()).expect("write mpcheck report json");
        println!("wrote {}", report_path.display());
        if !report.clean() {
            eprintln!(
                "campaign --check: {} finding(s), failing",
                report.findings.len()
            );
            std::process::exit(1);
        }
    }

    // Smoke keeps CI fast: records only, the figure sweep has its own test
    // coverage. The full campaign regenerates the paper artefacts from the
    // same registry the records came from.
    if with_figures && !smoke {
        let cfg = OutputConfig {
            out_dir,
            figures: FigureConfig {
                max_procs,
                ..FigureConfig::default()
            },
            with_extensions: true,
            verbose: true,
        };
        let report = output::write_all(&cfg).expect("write figure artefacts");
        println!("done: {}", report.display());
    }
}
