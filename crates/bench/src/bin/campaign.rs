//! The campaign driver: one invocation runs {machines x modes x
//! workloads x proc counts} through the unified workload registry and
//! writes the resulting record stream as JSON.
//!
//! ```text
//! cargo run -p bench --bin campaign --release               # paper campaign + figures
//! cargo run -p bench --bin campaign -- --smoke              # fast CI sweep, all 3 modes
//! cargo run -p bench --bin campaign -- --records FILE       # records JSON path
//! cargo run -p bench --bin campaign -- --out DIR            # artefact directory
//! cargo run -p bench --bin campaign -- --no-figures         # records only
//! cargo run -p bench --bin campaign -- --check              # mpcheck-verify native runs
//! cargo run -p bench --bin campaign -- --check-report FILE  # mpcheck report JSON path
//! cargo run -p bench --bin campaign -- --explore            # DPOR schedule exploration
//! cargo run -p bench --bin campaign -- --high-rank N        # virtual slice at N coop ranks
//! cargo run -p bench --bin campaign -- --workloads A,B      # registry-name filter
//! cargo run -p bench --bin campaign -- --smoke --backend shm --nprocs 2
//!                                                           # native cells over process fleets
//! ```
//!
//! Full mode replays the paper's simulated campaign over every machine
//! variant and regenerates all tables and figures from the same registry
//! (`hpcbench::output::write_all`). Smoke mode exercises every execution
//! path — native, simulated and virtual — on a small cross product so CI
//! proves all three routes stay wired through the registry and Runner.
//!
//! # Multi-process backends
//!
//! With `--backend shm` (one host, shared-memory channel files) or
//! `--backend tcp` (loopback sockets in CI), every native cell of the
//! smoke cross product runs as a fleet of `--nprocs` worker processes:
//! the driver re-execs *this binary* per cell through
//! [`mp::transport::launcher::Launcher`], which wires the world topology
//! via the `MP_*` environment. A worker detects the `HPCB_CELL_*` cell
//! description before argument parsing, installs the session, runs the
//! one workload, and — when it hosts rank 0 — writes the canonical
//! record lines for the driver to splice into the unified stream.
//! Simulated and virtual records are deterministic model evaluation and
//! always run in the driver. The record stream is line-for-line
//! comparable with a `--backend local` run of the same plan (modulo
//! timing statistics), which is exactly what the backend-parity test
//! asserts.

#[path = "../explore_driver.rs"]
#[allow(dead_code)] // `replay_file` is the mpcheck binary's half of the shared driver.
mod explore_driver;

use std::path::PathBuf;
use std::time::Duration;

use harness::{
    records_json, records_json_from_lines, Backend, Cell, Mode, ProcGrid, Record, RunPlan, Runner,
};
use hpcbench::figures::FigureConfig;
use hpcbench::output::{self, OutputConfig};
use machines::systems;
use mp::transport::launcher::Launcher;

/// Cell-description environment (set by the driver's fleet launcher on
/// top of the launcher's own `MP_*` session wiring): which workload a
/// worker runs, at what scale, and where the rank-0 host writes records.
const CELL_WORKLOAD: &str = "HPCB_CELL_WORKLOAD";
/// World size (rank count) of the cell; must equal `MP_WORLD_SIZE`.
const CELL_PROCS: &str = "HPCB_CELL_PROCS";
/// Message size in bytes, or `none` for unsized workloads.
const CELL_BYTES: &str = "HPCB_CELL_BYTES";
/// Repetition policy: `smoke`, `standard`, or a fixed iteration count.
const CELL_RUNNER: &str = "HPCB_CELL_RUNNER";
/// Path the rank-0-hosting worker writes the record JSON lines to.
const CELL_OUT: &str = "HPCB_CELL_OUT";

/// The smoke cross product: all three modes over a reduced grid. The
/// same plan drives the in-process path and the fleet path, so the two
/// record streams stay line-for-line comparable.
fn smoke_plan(backend: Backend, workloads: Option<Vec<&'static str>>) -> RunPlan {
    RunPlan {
        backend,
        modes: vec![Mode::Native, Mode::Simulated, Mode::Virtual],
        machines: vec![systems::dell_xeon(), systems::nec_sx8()],
        procs: ProcGrid::List(vec![2, 4]),
        bytes: vec![1024, 65536],
        workloads,
        runner: Runner::smoke(),
    }
}

fn smoke_records(
    check: bool,
    workloads: Option<Vec<&'static str>>,
) -> (Vec<Record>, Option<mpcheck::Report>) {
    let reg = hpcbench::registry();
    let plan = smoke_plan(Backend::Local, workloads);
    if check {
        let (records, report) = plan.execute_checked(&reg, mpcheck::Settings::default());
        (records, Some(report))
    } else {
        (plan.execute(&reg), None)
    }
}

/// The multi-process smoke sweep: native cells delegated to per-cell
/// worker fleets, simulated and virtual records produced in-process,
/// interleaved in the plan's deterministic order.
fn smoke_lines_multiproc(
    backend: Backend,
    nprocs: usize,
    workloads: Option<Vec<&'static str>>,
) -> Vec<String> {
    let reg = hpcbench::registry();
    let plan = smoke_plan(backend, workloads);
    let exe = std::env::current_exe().expect("campaign executable path");
    let scratch = std::env::temp_dir().join(format!("campaign-cells-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create cell scratch directory");
    let lines = plan.execute_lines(&reg, |cell| {
        run_cell_fleet(backend, nprocs, &exe, &scratch, cell)
    });
    let _ = std::fs::remove_dir_all(&scratch);
    lines
}

/// Launches one native cell as a worker fleet and returns the canonical
/// record lines its rank-0 host emitted.
fn run_cell_fleet(
    backend: Backend,
    nprocs: usize,
    exe: &std::path::Path,
    scratch: &std::path::Path,
    cell: &Cell,
) -> Vec<String> {
    let bytes_tag = cell
        .bytes
        .map_or_else(|| "none".to_string(), |b| b.to_string());
    let out_path = scratch.join(format!(
        "{}-p{}-b{}.jsonl",
        cell.workload, cell.procs, bytes_tag
    ));
    // A fleet never has more processes than ranks.
    let np = nprocs.clamp(1, cell.procs);
    println!(
        "  [{backend}] {} procs={} bytes={bytes_tag} over {np} worker process(es)",
        cell.workload, cell.procs
    );
    Launcher::new(backend, cell.procs, np, exe)
        .env(CELL_WORKLOAD, cell.workload)
        .env(CELL_PROCS, cell.procs.to_string())
        .env(CELL_BYTES, bytes_tag)
        .env(CELL_RUNNER, "smoke")
        .env(CELL_OUT, out_path.display().to_string())
        .timeout(Duration::from_secs(600))
        .run();
    let body = std::fs::read_to_string(&out_path).unwrap_or_else(|e| {
        panic!(
            "cell {} left no records at {}: {e}",
            cell.workload,
            out_path.display()
        )
    });
    body.lines().map(str::to_string).collect()
}

/// Worker-process entry: runs the one native cell described by the
/// `HPCB_CELL_*` environment inside the `MP_*` session the launcher
/// wired, then writes the record lines if this process hosts rank 0
/// (whose records are the canonical stream — every rank's records agree
/// on everything but timing, because the statistics are allreduced).
fn run_cell_worker() {
    let proc = mp::transport::init_from_env()
        .expect("cell workers are launched with an MP_* session environment");
    let var =
        |key: &str| std::env::var(key).unwrap_or_else(|_| panic!("cell worker: {key} must be set"));
    let name = var(CELL_WORKLOAD);
    let procs: usize = var(CELL_PROCS).parse().expect("cell world size");
    assert_eq!(
        procs,
        proc.world(),
        "cell world size must match the session's"
    );
    let bytes = match var(CELL_BYTES).as_str() {
        "none" => None,
        v => Some(v.parse::<u64>().expect("cell bytes")),
    };
    let runner = match var(CELL_RUNNER).as_str() {
        "smoke" => Runner::smoke(),
        "standard" => Runner::standard(),
        v => Runner::fixed(v.parse().expect("cell runner: smoke | standard | <iters>")),
    };
    let reg = hpcbench::registry();
    let workload = reg
        .get(&name)
        .unwrap_or_else(|| panic!("unknown workload {name:?}"));
    let records = workload
        .run(Mode::Native, &runner, None, procs, bytes)
        .expect("the driver only ships admissible native cells");
    if proc.resident(0) {
        let out = var(CELL_OUT);
        let lines: String = records.iter().map(|r| r.to_json() + "\n").collect();
        std::fs::write(&out, lines).unwrap_or_else(|e| panic!("cell worker: write {out}: {e}"));
    }
}

/// The high-rank virtual slice: real benchmark code at `procs`
/// cooperative ranks on the exascale extension model — worlds far past
/// the host's OS-thread budget. Barrier and the rooted collectives keep
/// per-rank state O(bytes), so even 100k-rank worlds fit on one host.
fn highrank_records(procs: usize) -> Vec<Record> {
    let reg = hpcbench::registry();
    let plan = RunPlan {
        backend: Backend::Local,
        modes: vec![Mode::Virtual],
        machines: vec![systems::exascale_cluster()],
        procs: ProcGrid::List(vec![procs]),
        bytes: vec![1024],
        workloads: Some(vec!["PingPong", "Barrier", "Bcast", "Allreduce"]),
        runner: Runner::fixed(1),
    };
    plan.execute(&reg)
}

fn paper_records(
    max_procs: usize,
    check: bool,
    workloads: Option<Vec<&'static str>>,
) -> (Vec<Record>, Option<mpcheck::Report>) {
    let reg = hpcbench::registry();
    let plan = RunPlan {
        backend: Backend::Local,
        modes: vec![Mode::Simulated],
        machines: systems::all_variants(),
        procs: ProcGrid::per_workload(move |m, _| {
            let m = m.expect("simulated grids resolve per machine");
            let limit = m.max_cpus.min(max_procs);
            let mut grid = Vec::new();
            let mut p = 2;
            while p <= limit {
                grid.push(p);
                p *= 2;
            }
            // The paper's odd installation endpoint (SX-8 at 576 CPUs).
            if m.max_cpus == 576 && limit >= 576 {
                grid.push(576);
            }
            grid
        }),
        bytes: vec![simnet::units::MIB],
        workloads,
        runner: Runner::standard(),
    };
    if check {
        let (records, report) = plan.execute_checked(&reg, mpcheck::Settings::default());
        (records, Some(report))
    } else {
        (plan.execute(&reg), None)
    }
}

fn main() {
    // Fleet workers re-exec this binary with the cell environment set;
    // they never parse arguments.
    if std::env::var_os(CELL_WORKLOAD).is_some() {
        run_cell_worker();
        return;
    }

    let mut out_dir = PathBuf::from("out");
    let mut records_path: Option<PathBuf> = None;
    let mut check_report_path: Option<PathBuf> = None;
    let mut smoke = false;
    let mut check = false;
    let mut explore = false;
    let mut with_figures = true;
    let mut max_procs = 2048usize;
    let mut backend = Backend::Local;
    let mut nprocs = 2usize;
    let mut workload_filter: Option<Vec<String>> = None;
    // Smoke runs a 16384-rank virtual slice by default; `--high-rank N`
    // raises it (65536+ for the scaling acceptance run) or adds the
    // slice to a full campaign. 0 disables it.
    let mut high_rank: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--explore" => explore = true,
            "--check-report" => {
                check = true;
                check_report_path = Some(PathBuf::from(
                    args.next().expect("--check-report needs a path"),
                ));
            }
            "--no-figures" => with_figures = false,
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a path")),
            "--records" => {
                records_path = Some(PathBuf::from(args.next().expect("--records needs a path")));
            }
            "--max-procs" => {
                max_procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-procs needs a number");
            }
            "--high-rank" => {
                high_rank = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--high-rank needs a rank count (0 disables the slice)"),
                );
            }
            "--backend" => {
                backend = args
                    .next()
                    .expect("--backend needs local, shm or tcp")
                    .parse()
                    .unwrap_or_else(|e| panic!("--backend: {e}"));
            }
            "--nprocs" => {
                nprocs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--nprocs needs a process count >= 1");
            }
            "--workloads" => {
                let list = args.next().expect("--workloads needs a,b,c names");
                workload_filter = Some(list.split(',').map(str::to_string).collect());
            }
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: campaign [--smoke] [--check] [--explore] [--no-figures] [--max-procs N] \
                     [--high-rank N] [--backend local|shm|tcp] [--nprocs N] \
                     [--workloads A,B] [--out DIR] [--records FILE] [--check-report FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    // Resolve the filter against the registry up front: unknown names
    // fail loudly instead of silently matching nothing, and the plan's
    // filter wants the registry's 'static names.
    let workloads: Option<Vec<&'static str>> = workload_filter.map(|names| {
        let reg = hpcbench::registry();
        names
            .iter()
            .map(|n| {
                reg.get(n)
                    .unwrap_or_else(|| panic!("unknown workload {n:?} in --workloads"))
                    .meta
                    .name
            })
            .collect()
    });

    // Schedule-space exploration replaces the record sweep: the DPOR
    // explorer drives the misuse gallery plus small-world virtual slices
    // of the registry through every meaningfully distinct interleaving,
    // and the exit code carries the acceptance verdict.
    if explore {
        if backend != Backend::Local || check {
            eprintln!("--explore runs in-process; it does not compose with --check or --backend");
            std::process::exit(2);
        }
        let plan = explore_driver::ExplorePlan {
            workloads: workloads
                .as_ref()
                .map(|names| names.iter().map(|n| n.to_string()).collect()),
            ..explore_driver::ExplorePlan::default()
        };
        let summary = explore_driver::run(&plan, &out_dir).expect("write exploration artefacts");
        print!("{}", summary.report);
        let report_path = out_dir.join("mpcheck-explore.json");
        std::fs::write(&report_path, summary.report.to_json()).expect("write exploration report");
        println!("wrote {}", report_path.display());
        println!(
            "wrote {} counterexample trace(s) under {}",
            summary.traces.len(),
            out_dir.join("schedules").display()
        );
        if !summary.failures.is_empty() {
            for failure in &summary.failures {
                eprintln!("campaign --explore: {failure}");
            }
            std::process::exit(1);
        }
        return;
    }

    if backend != Backend::Local {
        if !smoke {
            eprintln!("--backend {backend} drives the smoke cross product; add --smoke");
            std::process::exit(2);
        }
        if check {
            eprintln!("--check instruments in-process native runs; it does not compose with --backend {backend}");
            std::process::exit(2);
        }
        println!(
            "campaign --smoke --backend {backend}: native cells over {nprocs}-process fleets, \
             simulated + virtual in-process"
        );
        let mut lines = smoke_lines_multiproc(backend, nprocs, workloads);
        let high_rank = high_rank.unwrap_or(16_384);
        if high_rank > 0 {
            println!("high-rank slice: virtual IMB at {high_rank} cooperative ranks");
            lines.extend(highrank_records(high_rank).iter().map(Record::to_json));
        }
        let count = |mode: &str| {
            let needle = format!("\"mode\": \"{mode}\"");
            lines.iter().filter(|l| l.contains(&needle)).count()
        };
        println!(
            "{} records ({} native, {} simulated, {} virtual), all passed: {}",
            lines.len(),
            count("native"),
            count("simulated"),
            count("virtual"),
            lines.iter().all(|l| l.contains("\"passed\": true"))
        );
        assert!(
            lines.iter().all(|l| l.contains("\"passed\": true")),
            "campaign contains failed records"
        );
        std::fs::create_dir_all(&out_dir).expect("create output directory");
        let records_path = records_path.unwrap_or_else(|| out_dir.join("records.json"));
        std::fs::write(&records_path, records_json_from_lines(&lines)).expect("write records json");
        println!("wrote {}", records_path.display());
        return;
    }

    let (mut records, check_report) = if smoke {
        println!("campaign --smoke: native + simulated + virtual on a reduced cross product");
        smoke_records(check, workloads)
    } else {
        println!(
            "campaign: simulated paper sweep over every machine variant (max_procs = {max_procs})"
        );
        paper_records(max_procs, check, workloads)
    };

    let high_rank = high_rank.unwrap_or(if smoke { 16_384 } else { 0 });
    if high_rank > 0 {
        println!("high-rank slice: virtual IMB at {high_rank} cooperative ranks");
        records.extend(highrank_records(high_rank));
    }

    let mut by_mode = [0usize; 3];
    for r in &records {
        by_mode[r.mode as usize] += 1;
    }
    println!(
        "{} records ({} native, {} simulated, {} virtual), all passed: {}",
        records.len(),
        by_mode[Mode::Native as usize],
        by_mode[Mode::Simulated as usize],
        by_mode[Mode::Virtual as usize],
        records.iter().all(|r| r.passed)
    );
    assert!(
        records.iter().all(|r| r.passed),
        "campaign contains failed records"
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let records_path = records_path.unwrap_or_else(|| out_dir.join("records.json"));
    std::fs::write(&records_path, records_json(&records)).expect("write records json");
    println!("wrote {}", records_path.display());

    if let Some(report) = check_report {
        print!("{report}");
        let report_path = check_report_path.unwrap_or_else(|| out_dir.join("mpcheck-report.json"));
        std::fs::write(&report_path, report.to_json()).expect("write mpcheck report json");
        println!("wrote {}", report_path.display());
        if !report.clean() {
            eprintln!(
                "campaign --check: {} finding(s), failing",
                report.findings.len()
            );
            std::process::exit(1);
        }
    }

    // Smoke keeps CI fast: records only, the figure sweep has its own test
    // coverage. The full campaign regenerates the paper artefacts from the
    // same registry the records came from.
    if with_figures && !smoke {
        let cfg = OutputConfig {
            out_dir,
            figures: FigureConfig {
                max_procs,
                ..FigureConfig::default()
            },
            with_extensions: true,
            verbose: true,
        };
        let report = output::write_all(&cfg).expect("write figure artefacts");
        println!("done: {}", report.display());
    }
}
