//! Transport benchmark for the `mp` runtime: times the message-passing
//! hot paths every native HPCC/IMB number flows through and writes
//! `BENCH_mp.json`, so transport regressions are caught the same way
//! `bench_hpcc` pins the compute kernels.
//!
//! ```text
//! cargo run -p bench --bin bench_mp --release                 # writes BENCH_mp.json
//! cargo run -p bench --bin bench_mp --release -- --smoke      # fast CI mode
//! cargo run -p bench --bin bench_mp --release -- --baseline F # merge a prior run
//! ```
//!
//! With `--baseline FILE` (a previous `BENCH_mp.json`), each metric from
//! the prior run is re-emitted as `<name>_baseline` and the headline
//! PingPong/Bcast/Alltoall numbers get `<name>_speedup` ratios, so a
//! single JSON documents before vs after a transport change.
//!
//! Repetition counts, warm-up and best-of come from the shared
//! [`harness::Runner`] policy — the same one the native IMB paths use.

use harness::{metrics, Record, Runner};
use imb::benchmark::Benchmark;
use imb::native::run_native_with;

/// Best-of measurement of one benchmark configuration; transport timings
/// are noisy under thread scheduling, so keep the run with the lowest
/// t_max.
fn best_run(b: Benchmark, procs: usize, bytes: u64, runner: &Runner) -> Record {
    let mut best: Option<Record> = None;
    for _ in 0..runner.policy.measure_repetitions() {
        let m = run_native_with(b, procs, bytes, runner);
        if best.is_none_or(|prev| m.t_max_us() < prev.t_max_us()) {
            best = Some(m);
        }
    }
    best.unwrap()
}

fn main() {
    let mut out_path = String::from("BENCH_mp.json");
    let mut baseline_path: Option<String> = None;
    let mut runner = Runner::standard();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--smoke" => runner = Runner::smoke(),
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: bench_mp [--smoke] [--out FILE] [--baseline FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut sink = metrics::MetricSink::new("mp-transport");

    // --- PingPong: latency at 8 B, bandwidth across sizes ---------------
    let small = best_run(Benchmark::PingPong, 2, 8, &runner);
    println!("pingpong 8B: {:.3} us round trip", small.t_max_us());
    sink.push("pingpong_8b_latency_us", small.t_max_us(), "us");

    for bytes in [4096u64, 65536, 1 << 20] {
        let m = best_run(Benchmark::PingPong, 2, bytes, &runner);
        let bw = m.bandwidth_mbs().expect("pingpong reports bandwidth");
        println!("pingpong {bytes}B: {bw:.1} MB/s");
        sink.push(format!("pingpong_{bytes}b_bw_mbs"), bw, "MB/s");
    }

    // --- Collective fan-out/exchange paths on 8 ranks -------------------
    for (bench, name, sizes) in [
        (Benchmark::Bcast, "bcast", [1024u64, 1 << 20]),
        (Benchmark::Alltoall, "alltoall", [1024, 1 << 18]),
        (Benchmark::Sendrecv, "sendrecv", [1024, 1 << 20]),
    ] {
        for bytes in sizes {
            let m = best_run(bench, 8, bytes, &runner);
            println!("{name} p=8 {bytes}B: {:.2} us", m.t_max_us());
            sink.push(format!("{name}_p8_{bytes}b_us"), m.t_max_us(), "us");
        }
    }

    // --- Merge a prior run as the baseline ------------------------------
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = metrics::parse_baseline(&text);
        for (name, speedup) in sink.merge_baseline(&baseline) {
            println!("{name}: {speedup:.2}x vs baseline");
        }
    }

    sink.write(&out_path);
    println!("wrote {out_path}");
}
