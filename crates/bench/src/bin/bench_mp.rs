//! Transport benchmark for the `mp` runtime: times the message-passing
//! hot paths every native HPCC/IMB number flows through and writes
//! `BENCH_mp.json`, so transport regressions are caught the same way
//! `bench_hpcc` pins the compute kernels.
//!
//! ```text
//! cargo run -p bench --bin bench_mp --release                 # writes BENCH_mp.json
//! cargo run -p bench --bin bench_mp --release -- --smoke      # fast CI mode
//! cargo run -p bench --bin bench_mp --release -- --baseline F # merge a prior run
//! ```
//!
//! With `--baseline FILE` (a previous `BENCH_mp.json`), each metric from
//! the prior run is re-emitted as `<name>_baseline` and the headline
//! PingPong/Bcast/Alltoall numbers get `<name>_speedup` ratios, so a
//! single JSON documents before vs after a transport change.

use std::fmt::Write as _;

use imb::benchmark::Benchmark;
use imb::native::run_native;

struct Record {
    name: String,
    value: f64,
    unit: &'static str,
}

/// Iteration count for a message size: enough repetitions for a stable
/// average without making the large sizes take minutes (IMB's own
/// schedule shrinks the same way).
fn iters_for(bytes: u64, smoke: bool) -> usize {
    let full = match bytes {
        0..=1024 => 4000,
        1025..=65536 => 1000,
        65537..=262144 => 300,
        _ => 100,
    };
    if smoke {
        (full / 50).max(3)
    } else {
        full
    }
}

/// Best-of-`reps` measurement of one benchmark configuration; transport
/// timings are noisy under thread scheduling, so keep the best run.
fn best_run(b: Benchmark, procs: usize, bytes: u64, smoke: bool) -> imb::native::Measurement {
    let reps = if smoke { 1 } else { 3 };
    let mut best: Option<imb::native::Measurement> = None;
    for _ in 0..reps {
        let m = run_native(b, procs, bytes, iters_for(bytes, smoke));
        if best.is_none() || m.t_max_us < best.as_ref().unwrap().t_max_us {
            best = Some(m);
        }
    }
    best.unwrap()
}

/// Extracts `"name": { "value": X` pairs from a prior `BENCH_mp.json`
/// (the exact format this binary writes; no general JSON parser needed).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(idx) = rest.find("\"value\":") else {
            continue;
        };
        let tail = rest[idx + 8..].trim_start();
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            if !name.ends_with("_baseline") && !name.ends_with("_speedup") {
                out.push((name.to_string(), v));
            }
        }
    }
    out
}

fn main() {
    let mut out_path = String::from("BENCH_mp.json");
    let mut baseline_path: Option<String> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: bench_mp [--smoke] [--out FILE] [--baseline FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut records: Vec<Record> = Vec::new();

    // --- PingPong: latency at 8 B, bandwidth across sizes ---------------
    let small = best_run(Benchmark::PingPong, 2, 8, smoke);
    println!("pingpong 8B: {:.3} us round trip", small.t_max_us);
    records.push(Record {
        name: "pingpong_8b_latency_us".into(),
        value: small.t_max_us,
        unit: "us",
    });

    for bytes in [4096u64, 65536, 1 << 20] {
        let m = best_run(Benchmark::PingPong, 2, bytes, smoke);
        let bw = m.bandwidth_mbs.expect("pingpong reports bandwidth");
        println!("pingpong {bytes}B: {:.1} MB/s", bw);
        records.push(Record {
            name: format!("pingpong_{bytes}b_bw_mbs"),
            value: bw,
            unit: "MB/s",
        });
    }

    // --- Collective fan-out/exchange paths on 8 ranks -------------------
    for (bench, name, sizes) in [
        (Benchmark::Bcast, "bcast", [1024u64, 1 << 20]),
        (Benchmark::Alltoall, "alltoall", [1024, 1 << 18]),
        (Benchmark::Sendrecv, "sendrecv", [1024, 1 << 20]),
    ] {
        for bytes in sizes {
            let m = best_run(bench, 8, bytes, smoke);
            println!("{name} p=8 {bytes}B: {:.2} us", m.t_max_us);
            records.push(Record {
                name: format!("{name}_p8_{bytes}b_us"),
                value: m.t_max_us,
                unit: "us",
            });
        }
    }

    // --- Merge a prior run as the baseline ------------------------------
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_baseline(&text);
        let current: Vec<(String, f64)> =
            records.iter().map(|r| (r.name.clone(), r.value)).collect();
        for (name, value) in &baseline {
            let unit = if name.ends_with("_us") { "us" } else { "MB/s" };
            records.push(Record {
                name: format!("{name}_baseline"),
                value: *value,
                unit,
            });
            if let Some((_, now)) = current.iter().find(|(n, _)| n == name) {
                // Higher-is-better for bandwidth, lower-is-better for time.
                let speedup = if name.ends_with("_us") {
                    value / now
                } else {
                    now / value
                };
                records.push(Record {
                    name: format!("{name}_speedup"),
                    value: speedup,
                    unit: "x",
                });
                println!("{name}: {speedup:.2}x vs baseline");
            }
        }
    }

    // --- Write BENCH_mp.json --------------------------------------------
    let mut json = String::from("{\n  \"suite\": \"mp-transport\",\n  \"metrics\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            json,
            "    \"{}\": {{ \"value\": {:.4}, \"unit\": \"{}\" }}{comma}",
            r.name, r.value, r.unit
        )
        .unwrap();
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
