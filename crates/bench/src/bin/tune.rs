//! Per-host kernel autotuner: sweeps the DGEMM blocking, FFT block
//! schedule, HPL panel width and per-rank thread count on this host,
//! then persists the winners to the versioned tuning table
//! (`TUNE.hpcc`, or `HPCB_TUNE_FILE`) keyed by the host topology.
//! Kernels pick the entry up transparently on their next run.
//!
//! ```text
//! cargo run -p bench --bin tune --release            # full sweep
//! cargo run -p bench --bin tune --release -- --smoke # trimmed CI sweep
//! cargo run -p bench --bin tune --release -- --out F # alternate table
//! ```
//!
//! Each trial installs its candidate through [`smp::tune::set_trial`],
//! times the kernel with the harness best-of policy, and keeps the
//! fastest. The sweep is coordinate descent — one parameter group at a
//! time, winners feeding forward — which keeps the trial count linear
//! in the grid sizes while still capturing the dominant interactions
//! (DGEMM blocking first, since HPL inherits it).

use harness::Runner;
use hpcc::hpl::{self, HplConfig};
use hpcc::kernels::dgemm::{dgemm, dgemm_flops};
use hpcc::kernels::fft::{fft, Complex};
use smp::tune::{self, TuneTable, Tuned};

fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Times one closure under a trial parameter set, restoring the
/// no-trial state afterwards.
fn trial_secs(candidate: Tuned, reps: usize, mut f: impl FnMut()) -> f64 {
    tune::set_trial(Some(candidate));
    let t = Runner::best_secs(reps, &mut f);
    tune::set_trial(None);
    t
}

fn main() {
    let mut runner = Runner::standard();
    let mut out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => runner = Runner::smoke(),
            "--out" => out = Some(args.next().expect("--out needs a path").into()),
            other => {
                eprintln!("unknown argument: {other}\nusage: tune [--smoke] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    let smoke = runner.policy.is_smoke();
    let reps = runner.policy.best_reps(3);
    let path = out.unwrap_or_else(tune::tune_file_path);
    let host = smp::topo::host_key();
    let cpus = smp::topo::detect().online_cpus;
    println!("tuning host {host} -> {}", path.display());

    let mut best = Tuned::default();

    // --- DGEMM blocking: coordinate sweep MC, NC, KC ---------------------
    let n = if smoke { 192 } else { 384 };
    let a = fill(n * n, 1);
    let b = fill(n * n, 2);
    let mut c = vec![0.0f64; n * n];
    let time_dgemm = |cand: Tuned, c: &mut Vec<f64>| {
        trial_secs(cand, reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            dgemm(n, &a, &b, c);
        })
    };
    for (pick, grid) in [
        (0usize, [32usize, 64, 128].as_slice()),
        (1, [128, 256, 512].as_slice()),
        (2, [128, 256, 512].as_slice()),
    ] {
        let mut best_t = f64::INFINITY;
        let mut best_v = 0;
        for &v in grid {
            let mut cand = best;
            match pick {
                0 => cand.dgemm_mc = v,
                1 => cand.dgemm_nc = v,
                _ => cand.dgemm_kc = v,
            }
            let t = time_dgemm(cand, &mut c);
            if t < best_t {
                (best_t, best_v) = (t, v);
            }
        }
        match pick {
            0 => best.dgemm_mc = best_v,
            1 => best.dgemm_nc = best_v,
            _ => best.dgemm_kc = best_v,
        }
    }
    println!(
        "dgemm blocking: mc {} nc {} kc {} ({:.2} Gflop/s at n={n})",
        best.dgemm_mc,
        best.dgemm_nc,
        best.dgemm_kc,
        dgemm_flops(n) / time_dgemm(best, &mut c) / 1e9
    );

    // --- FFT block schedule ---------------------------------------------
    let fft_n = 1usize << if smoke { 14 } else { 18 };
    let signal: Vec<Complex> = fill(2 * fft_n, 3)
        .chunks_exact(2)
        .map(|p| Complex::new(p[0], p[1]))
        .collect();
    let mut data = signal.clone();
    let time_fft = |cand: Tuned, data: &mut Vec<Complex>| {
        trial_secs(cand, reps, || {
            data.copy_from_slice(&signal);
            fft(data, false);
        })
    };
    for (pick, grid) in [
        (0usize, [512usize, 1024, 2048].as_slice()),
        (1, [1 << 14, 1 << 15, 1 << 16].as_slice()),
    ] {
        let mut best_t = f64::INFINITY;
        let mut best_v = 0;
        for &v in grid {
            let mut cand = best;
            if pick == 0 {
                cand.fft_l1_block = v;
            } else {
                cand.fft_l2_block = v.max(cand.fft_l1_block);
            }
            let t = time_fft(cand, &mut data);
            if t < best_t {
                (best_t, best_v) = (t, v);
            }
        }
        if pick == 0 {
            best.fft_l1_block = best_v;
        } else {
            best.fft_l2_block = best_v.max(best.fft_l1_block);
        }
    }
    println!(
        "fft blocks: l1 {} l2 {} (n=2^{})",
        best.fft_l1_block,
        best.fft_l2_block,
        fft_n.trailing_zeros()
    );

    // --- HPL panel width -------------------------------------------------
    let hpl_n = if smoke { 192 } else { 384 };
    let mut best_t = f64::INFINITY;
    let mut best_nb = best.hpl_nb;
    for nb in [16usize, 32, 64] {
        let mut cand = best;
        cand.hpl_nb = nb;
        let t = trial_secs(cand, reps, || {
            let r = mp::run(1, move |comm| {
                hpl::run(
                    comm,
                    &HplConfig {
                        n: hpl_n,
                        nb,
                        lookahead: true,
                    },
                )
            })[0];
            assert!(
                r.passed,
                "HPL trial nb={nb} failed: residual {}",
                r.residual
            );
        });
        if t < best_t {
            (best_t, best_nb) = (t, nb);
        }
    }
    best.hpl_nb = best_nb;
    best.hpl_lookahead = true;
    println!("hpl: nb {} lookahead on (n={hpl_n})", best.hpl_nb);

    // --- Thread count: rescale the DGEMM winner under real pools ---------
    let max_t = cpus.clamp(1, 4);
    let mut best_t = f64::INFINITY;
    let mut best_threads = 1;
    for t in 1..=max_t {
        let guard = smp::AmbientGuard::install(t);
        let secs = time_dgemm(best, &mut c);
        drop(guard);
        println!("threads {t}: {:.2} Gflop/s", dgemm_flops(n) / secs / 1e9);
        if secs < best_t {
            (best_t, best_threads) = (secs, t);
        }
    }
    best.threads = best_threads;
    println!("threads: {} (of {cpus} online)", best.threads);

    // --- Persist ---------------------------------------------------------
    let mut table = TuneTable::load(&path).unwrap_or_else(|e| {
        if !matches!(e, tune::TuneError::Io(_)) {
            eprintln!("tune: replacing unusable table at {}: {e}", path.display());
        }
        TuneTable::new()
    });
    table.set(&host, best.sanitized());
    table.store(&path).expect("cannot write tuning table");
    println!("wrote {} ({} host entries)", path.display(), table.len());
}
