//! Perf baseline for the compute hot path: times DGEMM, the STREAM
//! bandwidth kernels and HPL at fixed sizes and writes `BENCH_hpcc.json`,
//! establishing the trajectory every later PR is measured against.
//!
//! ```text
//! cargo run -p bench --bin bench_hpcc --release            # writes BENCH_hpcc.json
//! cargo run -p bench --bin bench_hpcc --release -- --smoke # fast CI mode
//! cargo run -p bench --bin bench_hpcc --release -- --out F
//! ```
//!
//! The packed register-blocked kernel is compared against the seed's
//! 48x48 tiled i-k-j loop (reproduced here verbatim as the frozen
//! baseline), so the speedup column stays meaningful as the kernel
//! evolves.

use harness::{metrics::MetricSink, Runner};
use hpcc::hpl::{self, HplConfig};
use hpcc::hpl2d::{self, Hpl2dConfig};
use hpcc::kernels::dgemm::{dgemm, dgemm_flops};
use hpcc::kernels::stream::{StreamArrays, StreamKernel};

/// The seed's DGEMM (PR 0): cache-tiled triple loop, no packing, no
/// register blocking. Kept as the fixed reference point for speedups.
fn tiled_baseline(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const TILE: usize = 48;
    for it in (0..n).step_by(TILE) {
        let imax = (it + TILE).min(n);
        for kt in (0..n).step_by(TILE) {
            let kmax = (kt + TILE).min(n);
            for jt in (0..n).step_by(TILE) {
                let jmax = (jt + TILE).min(n);
                for i in it..imax {
                    for k in kt..kmax {
                        let aik = a[i * n + k];
                        let brow = &b[k * n + jt..k * n + jmax];
                        let crow = &mut c[i * n + jt..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn main() {
    let mut out_path = String::from("BENCH_hpcc.json");
    let mut runner = Runner::standard();
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--smoke" => runner = Runner::smoke(),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a count");
            }
            other => {
                eprintln!(
                    "unknown argument: {other}\n\
                     usage: bench_hpcc [--smoke] [--threads N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    if threads > 0 {
        smp::pool::set_process_threads(threads);
    }
    let pool_threads = smp::ambient_threads().max(1);
    let smoke = runner.policy.is_smoke();
    let reps = runner.policy.best_reps(5);

    let mut sink = MetricSink::new("hpcc-compute-baseline");
    sink.push("pool_threads", pool_threads as f64, "threads");

    // --- DGEMM: packed kernel vs the seed's tiled loop ------------------
    let dgemm_sizes: &[usize] = if smoke { &[256] } else { &[256, 512] };
    for &n in dgemm_sizes {
        let a = fill(n * n, 1);
        let b = fill(n * n, 2);
        let mut c = vec![0.0f64; n * n];
        let flops = dgemm_flops(n);

        let t_packed = {
            let _serial = smp::AmbientGuard::serial();
            Runner::best_secs(reps, || {
                c.iter_mut().for_each(|v| *v = 0.0);
                dgemm(n, &a, &b, &mut c);
            })
        };
        let t_tiled = Runner::best_secs(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            tiled_baseline(n, &a, &b, &mut c);
        });

        println!(
            "dgemm n={n}: packed {:.2} Gflop/s, tiled baseline {:.2} Gflop/s, speedup {:.2}x",
            flops / t_packed / 1e9,
            flops / t_tiled / 1e9,
            t_tiled / t_packed
        );
        sink.push(
            format!("dgemm_packed_n{n}_gflops"),
            flops / t_packed / 1e9,
            "Gflop/s",
        );
        sink.push(
            format!("dgemm_tiled_seed_n{n}_gflops"),
            flops / t_tiled / 1e9,
            "Gflop/s",
        );
        sink.push(
            format!("dgemm_speedup_vs_seed_n{n}"),
            t_tiled / t_packed,
            "x",
        );

        if pool_threads > 1 {
            let t_smp = Runner::best_secs(reps, || {
                c.iter_mut().for_each(|v| *v = 0.0);
                dgemm(n, &a, &b, &mut c);
            });
            println!(
                "dgemm n={n} threads={pool_threads}: {:.2} Gflop/s, thread speedup {:.2}x",
                flops / t_smp / 1e9,
                t_packed / t_smp
            );
            sink.push(
                format!("dgemm_packed_n{n}_t{pool_threads}_gflops"),
                flops / t_smp / 1e9,
                "Gflop/s",
            );
            sink.push(
                format!("dgemm_thread_speedup_n{n}_t{pool_threads}"),
                t_packed / t_smp,
                "x",
            );
        }
    }

    // --- STREAM: sustainable bandwidth of the four kernels ---------------
    // 2^24 doubles per array (128 MiB each, three arrays) so the working
    // set of every kernel exceeds the last-level cache; smoke mode keeps
    // the sweep structure at a cache-sized fraction of the cost.
    {
        let len = 1usize << if smoke { 21 } else { 24 };
        let mut arrays = StreamArrays::new(len);
        // One untimed canonical sequence to fault the pages in.
        for k in StreamKernel::ALL {
            arrays.run(k);
        }
        for k in StreamKernel::ALL {
            let secs = {
                let _serial = smp::AmbientGuard::serial();
                Runner::best_secs(reps, || arrays.run(k))
            };
            let gbs = (k.bytes_per_element() * len) as f64 / secs / 1e9;
            let name = match k {
                StreamKernel::Copy => "stream_copy_gbs",
                StreamKernel::Scale => "stream_scale_gbs",
                StreamKernel::Add => "stream_add_gbs",
                StreamKernel::Triad => "stream_triad_gbs",
            };
            println!("stream {k:?} len=2^{}: {gbs:.2} GB/s", len.trailing_zeros());
            sink.push(name, gbs, "GB/s");
            if pool_threads > 1 {
                let secs_smp = Runner::best_secs(reps, || arrays.run(k));
                let gbs_smp = (k.bytes_per_element() * len) as f64 / secs_smp / 1e9;
                println!(
                    "stream {k:?} threads={pool_threads}: {gbs_smp:.2} GB/s, \
                     thread speedup {:.2}x",
                    secs / secs_smp
                );
                sink.push(format!("{name}_t{pool_threads}"), gbs_smp, "GB/s");
            }
        }
    }

    // --- HPL: single-rank and small multi-rank factorisations -----------
    // The canonical metrics (and the gated scaling ratios) are measured
    // with serial ranks, like every prior baseline; hybrid-rank variants
    // are reported alongside as *_t{N} when --threads is given.
    let hpl_n = if smoke { 256 } else { 512 };
    smp::pool::set_process_threads(1);
    let r1 = mp::run(1, move |comm| {
        hpl::run(
            comm,
            &HplConfig {
                n: hpl_n,
                nb: 32,
                ..HplConfig::default()
            },
        )
    })[0];
    assert!(
        r1.passed,
        "HPL n={hpl_n} failed verification: residual {}",
        r1.residual
    );
    println!(
        "hpl 1d p=1 n={hpl_n}: {:.2} Gflop/s (residual {:.3})",
        r1.gflops, r1.residual
    );
    sink.push(format!("hpl1d_p1_n{hpl_n}_gflops"), r1.gflops, "Gflop/s");

    let r4 = mp::run(4, move |comm| {
        hpl::run(
            comm,
            &HplConfig {
                n: hpl_n,
                nb: 32,
                ..HplConfig::default()
            },
        )
    })[0];
    assert!(
        r4.passed,
        "HPL p=4 failed verification: residual {}",
        r4.residual
    );
    println!(
        "hpl 1d p=4 n={hpl_n}: {:.2} Gflop/s (residual {:.3})",
        r4.gflops, r4.residual
    );
    sink.push(format!("hpl1d_p4_n{hpl_n}_gflops"), r4.gflops, "Gflop/s");

    let r2d = mp::run(4, move |comm| {
        hpl2d::run(
            comm,
            &Hpl2dConfig {
                n: hpl_n,
                nb: 32,
                p_rows: 2,
                lookahead: true,
            },
        )
    })[0];
    assert!(
        r2d.passed,
        "HPL2D failed verification: residual {}",
        r2d.residual
    );
    println!(
        "hpl 2d 2x2 n={hpl_n}: {:.2} Gflop/s (residual {:.3})",
        r2d.gflops, r2d.residual
    );
    sink.push(format!("hpl2d_2x2_n{hpl_n}_gflops"), r2d.gflops, "Gflop/s");

    // Explicit scaling metrics so the known parallel-efficiency regression
    // (p=4 below p=1 at this problem size) is tracked side by side rather
    // than buried in two separate absolute numbers.
    println!(
        "hpl scaling n={hpl_n}: p4/p1 {:.3}, 2d-2x2/1d-p4 {:.3}",
        r4.gflops / r1.gflops,
        r2d.gflops / r4.gflops
    );
    sink.push("hpl1d_scaling_p4_over_p1", r4.gflops / r1.gflops, "ratio");
    sink.push("hpl2d_2x2_over_hpl1d_p4", r2d.gflops / r4.gflops, "ratio");

    // Hybrid-rank HPL: the same factorisations with --threads workers
    // per rank, reported alongside the serial canon.
    if threads > 1 {
        smp::pool::set_process_threads(threads);
        let r1t = mp::run(1, move |comm| {
            hpl::run(
                comm,
                &HplConfig {
                    n: hpl_n,
                    nb: 32,
                    ..HplConfig::default()
                },
            )
        })[0];
        assert!(r1t.passed, "hybrid HPL failed: residual {}", r1t.residual);
        let r2dt = mp::run(4, move |comm| {
            hpl2d::run(
                comm,
                &Hpl2dConfig {
                    n: hpl_n,
                    nb: 32,
                    p_rows: 2,
                    lookahead: true,
                },
            )
        })[0];
        assert!(
            r2dt.passed,
            "hybrid HPL2D failed: residual {}",
            r2dt.residual
        );
        println!(
            "hpl hybrid threads={threads}: 1d p=1 {:.2} Gflop/s ({:.2}x), \
             2d 2x2 {:.2} Gflop/s ({:.2}x)",
            r1t.gflops,
            r1t.gflops / r1.gflops,
            r2dt.gflops,
            r2dt.gflops / r2d.gflops
        );
        sink.push(
            format!("hpl1d_p1_n{hpl_n}_t{threads}_gflops"),
            r1t.gflops,
            "Gflop/s",
        );
        sink.push(
            format!("hpl2d_2x2_n{hpl_n}_t{threads}_gflops"),
            r2dt.gflops,
            "Gflop/s",
        );
    }

    sink.write(&out_path);
    println!("wrote {out_path}");
}
