//! Perf baseline for the compute hot path: times DGEMM, the STREAM
//! bandwidth kernels and HPL at fixed sizes and writes `BENCH_hpcc.json`,
//! establishing the trajectory every later PR is measured against.
//!
//! ```text
//! cargo run -p bench --bin bench_hpcc --release            # writes BENCH_hpcc.json
//! cargo run -p bench --bin bench_hpcc --release -- --out F
//! ```
//!
//! The packed register-blocked kernel is compared against the seed's
//! 48x48 tiled i-k-j loop (reproduced here verbatim as the frozen
//! baseline), so the speedup column stays meaningful as the kernel
//! evolves.

use std::fmt::Write as _;
use std::time::Instant;

use hpcc::hpl::{self, HplConfig};
use hpcc::hpl2d::{self, Hpl2dConfig};
use hpcc::kernels::dgemm::{dgemm, dgemm_flops};
use hpcc::kernels::stream::{StreamArrays, StreamKernel};

/// The seed's DGEMM (PR 0): cache-tiled triple loop, no packing, no
/// register blocking. Kept as the fixed reference point for speedups.
fn tiled_baseline(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const TILE: usize = 48;
    for it in (0..n).step_by(TILE) {
        let imax = (it + TILE).min(n);
        for kt in (0..n).step_by(TILE) {
            let kmax = (kt + TILE).min(n);
            for jt in (0..n).step_by(TILE) {
                let jmax = (jt + TILE).min(n);
                for i in it..imax {
                    for k in kt..kmax {
                        let aik = a[i * n + k];
                        let brow = &b[k * n + jt..k * n + jmax];
                        let crow = &mut c[i * n + jt..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Best-of-`reps` wall time of one invocation of `f`.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best.max(1e-9)
}

struct Record {
    name: String,
    value: f64,
    unit: &'static str,
}

fn main() {
    let mut out_path = String::from("BENCH_hpcc.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}\nusage: bench_hpcc [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let mut records: Vec<Record> = Vec::new();

    // --- DGEMM: packed kernel vs the seed's tiled loop ------------------
    for n in [256usize, 512] {
        let a = fill(n * n, 1);
        let b = fill(n * n, 2);
        let mut c = vec![0.0f64; n * n];
        let flops = dgemm_flops(n);

        let t_packed = best_secs(5, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            dgemm(n, &a, &b, &mut c);
        });
        let t_tiled = best_secs(5, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            tiled_baseline(n, &a, &b, &mut c);
        });

        println!(
            "dgemm n={n}: packed {:.2} Gflop/s, tiled baseline {:.2} Gflop/s, speedup {:.2}x",
            flops / t_packed / 1e9,
            flops / t_tiled / 1e9,
            t_tiled / t_packed
        );
        records.push(Record {
            name: format!("dgemm_packed_n{n}_gflops"),
            value: flops / t_packed / 1e9,
            unit: "Gflop/s",
        });
        records.push(Record {
            name: format!("dgemm_tiled_seed_n{n}_gflops"),
            value: flops / t_tiled / 1e9,
            unit: "Gflop/s",
        });
        records.push(Record {
            name: format!("dgemm_speedup_vs_seed_n{n}"),
            value: t_tiled / t_packed,
            unit: "x",
        });
    }

    // --- STREAM: sustainable bandwidth of the four kernels ---------------
    // 2^24 doubles per array (128 MiB each, three arrays) so the working
    // set of every kernel exceeds the last-level cache.
    {
        let len = 1usize << 24;
        let mut arrays = StreamArrays::new(len);
        // One untimed canonical sequence to fault the pages in.
        for k in StreamKernel::ALL {
            arrays.run(k);
        }
        for k in StreamKernel::ALL {
            let secs = best_secs(5, || arrays.run(k));
            let gbs = (k.bytes_per_element() * len) as f64 / secs / 1e9;
            let name = match k {
                StreamKernel::Copy => "stream_copy_gbs",
                StreamKernel::Scale => "stream_scale_gbs",
                StreamKernel::Add => "stream_add_gbs",
                StreamKernel::Triad => "stream_triad_gbs",
            };
            println!("stream {k:?} n=2^24: {gbs:.2} GB/s");
            records.push(Record {
                name: name.into(),
                value: gbs,
                unit: "GB/s",
            });
        }
    }

    // --- HPL: single-rank and small multi-rank factorisations -----------
    let r1 = mp::run(1, |comm| hpl::run(comm, &HplConfig { n: 512, nb: 32 }))[0];
    assert!(
        r1.passed,
        "HPL n=512 failed verification: residual {}",
        r1.residual
    );
    println!(
        "hpl 1d p=1 n=512: {:.2} Gflop/s (residual {:.3})",
        r1.gflops, r1.residual
    );
    records.push(Record {
        name: "hpl1d_p1_n512_gflops".into(),
        value: r1.gflops,
        unit: "Gflop/s",
    });

    let r4 = mp::run(4, |comm| hpl::run(comm, &HplConfig { n: 512, nb: 32 }))[0];
    assert!(
        r4.passed,
        "HPL p=4 failed verification: residual {}",
        r4.residual
    );
    println!(
        "hpl 1d p=4 n=512: {:.2} Gflop/s (residual {:.3})",
        r4.gflops, r4.residual
    );
    records.push(Record {
        name: "hpl1d_p4_n512_gflops".into(),
        value: r4.gflops,
        unit: "Gflop/s",
    });

    let r2d = mp::run(4, |comm| {
        hpl2d::run(
            comm,
            &Hpl2dConfig {
                n: 512,
                nb: 32,
                p_rows: 2,
            },
        )
    })[0];
    assert!(
        r2d.passed,
        "HPL2D failed verification: residual {}",
        r2d.residual
    );
    println!(
        "hpl 2d 2x2 n=512: {:.2} Gflop/s (residual {:.3})",
        r2d.gflops, r2d.residual
    );
    records.push(Record {
        name: "hpl2d_2x2_n512_gflops".into(),
        value: r2d.gflops,
        unit: "Gflop/s",
    });

    // Explicit scaling metrics so the known parallel-efficiency regression
    // (p=4 below p=1 at this problem size) is tracked side by side rather
    // than buried in two separate absolute numbers.
    println!(
        "hpl scaling n=512: p4/p1 {:.3}, 2d-2x2/1d-p4 {:.3}",
        r4.gflops / r1.gflops,
        r2d.gflops / r4.gflops
    );
    records.push(Record {
        name: "hpl1d_scaling_p4_over_p1".into(),
        value: r4.gflops / r1.gflops,
        unit: "ratio",
    });
    records.push(Record {
        name: "hpl2d_2x2_over_hpl1d_p4".into(),
        value: r2d.gflops / r4.gflops,
        unit: "ratio",
    });

    // --- Write BENCH_hpcc.json ------------------------------------------
    let mut json = String::from("{\n  \"suite\": \"hpcc-compute-baseline\",\n  \"metrics\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        writeln!(
            json,
            "    \"{}\": {{ \"value\": {:.4}, \"unit\": \"{}\" }}{comma}",
            r.name, r.value, r.unit
        )
        .unwrap();
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
