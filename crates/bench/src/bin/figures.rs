//! Regenerates every table and figure of the paper into `out/`.
//!
//! ```text
//! cargo run -p bench --bin figures --release              # full paper scale
//! cargo run -p bench --bin figures --release -- --quick   # small sweep
//! cargo run -p bench --bin figures --release -- --out DIR
//! ```
//!
//! Writes one CSV per figure/table plus a combined `report.md`, and
//! prints a short summary to stdout.

use std::fs;
use std::path::PathBuf;

use hpcbench::extensions;
use hpcbench::figures::{self, FigureConfig};

fn main() {
    let mut out_dir = PathBuf::from("out");
    let mut cfg = FigureConfig::default();
    let mut with_extensions = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cfg = FigureConfig::quick(),
            "--no-extensions" => with_extensions = false,
            "--max-procs" => {
                cfg.max_procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-procs needs a number");
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: figures [--quick] [--max-procs N] [--out DIR] [--no-extensions]");
                std::process::exit(2);
            }
        }
    }

    fs::create_dir_all(&out_dir).expect("create output directory");
    let mut report = String::from(
        "# Regenerated tables and figures\n\nSaini et al., *Performance evaluation of \
         supercomputers using HPCC and IMB Benchmarks* — simulated reproduction.\n\n",
    );

    println!("writing tables ...");
    for table in figures::all_tables(&cfg) {
        fs::write(out_dir.join(format!("{}.csv", table.id)), table.to_csv())
            .expect("write table csv");
        report.push_str(&table.to_markdown());
        report.push('\n');
        println!("  {} ({} rows)", table.id, table.rows.len());
    }

    println!("writing figures (max_procs = {}) ...", cfg.max_procs);
    for fig in figures::all_figures(&cfg) {
        fs::write(out_dir.join(format!("{}.csv", fig.id)), fig.to_csv()).expect("write figure csv");
        fs::write(
            out_dir.join(format!("{}.svg", fig.id)),
            hpcbench::svg::render(&fig),
        )
        .expect("write figure svg");
        report.push_str(&fig.to_markdown());
        report.push('\n');
        let points: usize = fig.series.iter().map(|s| s.points.len()).sum();
        println!(
            "  {} ({} series, {points} points)",
            fig.id,
            fig.series.len()
        );
    }

    if with_extensions {
        println!("writing extension studies (the paper's announced future work) ...");
        let mut ext_figs = extensions::all_msgsize_figures(&cfg);
        ext_figs.extend(extensions::all_onesided_figures());
        ext_figs.push(extensions::future_systems_figure(&cfg));
        for fig in ext_figs {
            fs::write(out_dir.join(format!("{}.csv", fig.id)), fig.to_csv())
                .expect("write extension csv");
            fs::write(
                out_dir.join(format!("{}.svg", fig.id)),
                hpcbench::svg::render(&fig),
            )
            .expect("write extension svg");
            report.push_str(&fig.to_markdown());
            report.push('\n');
            println!("  {}", fig.id);
        }
    }

    fs::write(out_dir.join("report.md"), &report).expect("write report.md");
    println!("done: {}", out_dir.join("report.md").display());
}
