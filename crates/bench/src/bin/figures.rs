//! Regenerates every table and figure of the paper into `out/`.
//!
//! ```text
//! cargo run -p bench --bin figures --release              # full paper scale
//! cargo run -p bench --bin figures --release -- --quick   # small sweep
//! cargo run -p bench --bin figures --release -- --out DIR
//! ```
//!
//! Writes one CSV per figure/table plus a combined `report.md`, and
//! prints a short summary to stdout. This is a thin wrapper over
//! `hpcbench::output::write_all`; the campaign driver (`campaign`)
//! produces the same artefacts alongside the unified records JSON.

use std::path::PathBuf;

use hpcbench::figures::FigureConfig;
use hpcbench::output::{self, OutputConfig};

fn main() {
    let mut cfg = OutputConfig::new(PathBuf::from("out"));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cfg.figures = FigureConfig::quick(),
            "--no-extensions" => cfg.with_extensions = false,
            "--max-procs" => {
                cfg.figures.max_procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-procs needs a number");
            }
            "--out" => cfg.out_dir = PathBuf::from(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: figures [--quick] [--max-procs N] [--out DIR] [--no-extensions]");
                std::process::exit(2);
            }
        }
    }

    let report = output::write_all(&cfg).expect("write artefacts");
    println!("done: {}", report.display());
}
