//! Backend parity: a campaign over a multi-process transport must emit
//! the *same record stream* as the in-process local backend — same
//! benchmarks, modes, machines, proc counts, sizes, repetition counts
//! and verification verdicts, in the same order. Only the timing
//! numbers (`value`, `t_min/avg/max_us`) may differ, because those are
//! wall-clock measurements.
//!
//! The tests drive the real `campaign` binary (the fleet path re-execs
//! it per native cell via `mp::transport::launcher`), so this exercises
//! the full stack: plan enumeration, fleet launch, `MP_*` topology
//! wiring, session install, cross-process delivery, rank-0 record
//! emission and the driver's stream splice.

use std::path::{Path, PathBuf};
use std::process::Command;

/// All 19 registry workloads (7 HPCC + 12 IMB), the coverage floor for
/// the local-vs-shm sweep.
const ALL_WORKLOADS: [&str; 19] = [
    "G-HPL",
    "G-PTRANS",
    "G-RandomAccess",
    "EP-STREAM",
    "G-FFT",
    "EP-DGEMM",
    "RandomRing",
    "PingPong",
    "PingPing",
    "Sendrecv",
    "Exchange",
    "Bcast",
    "Allgather",
    "Allgatherv",
    "Alltoall",
    "Reduce",
    "Reduce_scatter",
    "Allreduce",
    "Barrier",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("backend-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the campaign binary with `args` (plus scratch `--out`/`--records`
/// wiring and `--high-rank 0`, which is identical on every backend and
/// only slows the comparison down) and returns the raw record lines.
fn campaign(dir: &Path, args: &[&str]) -> Vec<String> {
    let records = dir.join("records.json");
    let output = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(args)
        .args(["--high-rank", "0"])
        .arg("--out")
        .arg(dir)
        .arg("--records")
        .arg(&records)
        .output()
        .expect("spawn campaign");
    assert!(
        output.status.success(),
        "campaign {args:?} failed\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let body = std::fs::read_to_string(&records).expect("records.json written");
    body.lines()
        .map(str::trim)
        .filter(|l| l.starts_with("{ \"benchmark\""))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// Blanks the span from `from` (exclusive of the key itself) up to
/// `upto`, so timing-valued fields compare as placeholders.
fn blank(line: &str, from: &str, upto: &str) -> String {
    let a = line
        .find(from)
        .unwrap_or_else(|| panic!("{from:?} missing in {line}"));
    let b = line[a..]
        .find(upto)
        .unwrap_or_else(|| panic!("{upto:?} missing in {line}"))
        + a;
    format!("{}{from}_{}", &line[..a], &line[b..])
}

/// A record line with the measured timings blanked: everything that
/// must agree across backends — identity, mode, machine, procs,
/// threads, bytes, metric, unit, repetitions, passed — survives.
fn normalize(line: &str) -> String {
    let line = blank(line, "\"value\": ", ", \"unit\"");
    blank(&line, "\"t_min_us\": ", ", \"passed\"")
}

fn normalized(lines: &[String]) -> Vec<String> {
    lines.iter().map(|l| normalize(l)).collect()
}

/// The acceptance sweep: every registry workload over the full smoke
/// cross product, local in-process versus two shm worker processes.
#[test]
fn local_and_shm_smoke_streams_are_identical_modulo_timing() {
    let dir = scratch("shm");
    let local = campaign(&dir, &["--smoke", "--backend", "local"]);
    let shm = campaign(&dir, &["--smoke", "--backend", "shm", "--nprocs", "2"]);
    assert!(!local.is_empty(), "local stream must not be empty");
    assert_eq!(
        normalized(&local),
        normalized(&shm),
        "record streams diverge between local and shm"
    );
    // Every workload contributed at least one *native* (measured,
    // cross-process) record, and every record verified.
    for name in ALL_WORKLOADS {
        let needle = format!("\"benchmark\": \"{name}\"");
        assert!(
            shm.iter()
                .any(|l| l.contains(&needle) && l.contains("\"mode\": \"native\"")),
            "{name}: no native record in the shm stream"
        );
    }
    assert!(
        shm.iter().all(|l| l.contains("\"passed\": true")),
        "every shm record must verify"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A four-process shm fleet packs ranks two-per-process at the p=4 grid
/// points (and one-per-process at p=2, clamped) — the stream must still
/// match local exactly.
#[test]
fn shm_four_process_fleets_preserve_parity() {
    let dir = scratch("shm4");
    let slice = ["--workloads", "Allreduce,Alltoall,G-PTRANS"];
    let mut local_args = vec!["--smoke", "--backend", "local"];
    local_args.extend_from_slice(&slice);
    let mut shm_args = vec!["--smoke", "--backend", "shm", "--nprocs", "4"];
    shm_args.extend_from_slice(&slice);
    let local = campaign(&dir, &local_args);
    let shm = campaign(&dir, &shm_args);
    assert!(!local.is_empty());
    assert_eq!(normalized(&local), normalized(&shm));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tcp loopback slice: PingPong, Sendrecv and Barrier over real
/// sockets. Identity with the local stream implies the multiset
/// cross-validation passed on every rank (`passed` is allreduced into
/// every record).
#[test]
fn tcp_loopback_slice_matches_local() {
    let dir = scratch("tcp");
    let slice = ["--workloads", "PingPong,Sendrecv,Barrier"];
    let mut local_args = vec!["--smoke", "--backend", "local"];
    local_args.extend_from_slice(&slice);
    let mut tcp_args = vec!["--smoke", "--backend", "tcp", "--nprocs", "2"];
    tcp_args.extend_from_slice(&slice);
    let local = campaign(&dir, &local_args);
    let tcp = campaign(&dir, &tcp_args);
    assert_eq!(normalized(&local), normalized(&tcp));
    for name in ["PingPong", "Sendrecv", "Barrier"] {
        let needle = format!("\"benchmark\": \"{name}\"");
        assert!(
            tcp.iter()
                .any(|l| l.contains(&needle) && l.contains("\"mode\": \"native\"")),
            "{name}: no native record over tcp"
        );
    }
    assert!(tcp.iter().all(|l| l.contains("\"passed\": true")));
    let _ = std::fs::remove_dir_all(&dir);
}
