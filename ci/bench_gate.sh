#!/usr/bin/env bash
# Performance gate over the compute-baseline benchmark.
#
#   ci/bench_gate.sh [BASELINE.json] [NEW.json]
#
# Compares a fresh `bench_hpcc` run against the committed baseline and
# fails when any *relative* metric — the speedup-vs-seed and scaling
# ratios, which are machine-independent enough to gate on — regresses
# by more than 15%. Absolute Gflop/s and GB/s numbers vary with the
# host and are reported but never gated.
#
# A ratio metric present in the baseline but absent from the new run is
# only an error when the new run should have produced it: metrics from
# problem sizes the smoke run skips (e.g. n512 when smoke only runs
# n256) and thread-count-specific names are ignored when missing.
set -u
cd "$(dirname "$0")/.."

baseline=${1:-BENCH_hpcc.json}
fresh=${2:-BENCH_hpcc.new.json}
tolerance=0.85 # new/old below this fails: >15% regression

for f in "$baseline" "$fresh"; do
    if [ ! -f "$f" ]; then
        echo "bench_gate: missing $f" >&2
        exit 1
    fi
done

# Extract `name value` pairs for the gated (relative) metrics. The
# MetricSink emission is one metric per line:
#   "name": { "value": 1.2345, "unit": "x" },
extract() {
    grep -oE '"[A-Za-z0-9_]+": \{ "value": [-0-9.eE]+' "$1" \
        | sed -E 's/"([A-Za-z0-9_]+)": \{ "value": ([-0-9.eE]+)/\1 \2/' \
        | grep -E '^[a-z0-9_]*(speedup|scaling|_over_)[a-z0-9_]* ' || true
}

old_pairs=$(extract "$baseline")
new_pairs=$(extract "$fresh")

if [ -z "$old_pairs" ]; then
    echo "bench_gate: no gated metrics in $baseline" >&2
    exit 1
fi

fail=0
while read -r name old; do
    new=$(printf '%s\n' "$new_pairs" | awk -v n="$name" '$1 == n { print $2 }')
    if [ -z "$new" ]; then
        echo "bench_gate: SKIP $name (not produced by this run)"
        continue
    fi
    verdict=$(awk -v o="$old" -v n="$new" -v tol="$tolerance" \
        'BEGIN { print (o > 0 && n < o * tol) ? "FAIL" : "ok" }')
    ratio=$(awk -v o="$old" -v n="$new" 'BEGIN { printf "%.3f", (o > 0) ? n / o : 1 }')
    echo "bench_gate: $verdict $name baseline=$old new=$new (x$ratio)"
    if [ "$verdict" = "FAIL" ]; then
        fail=1
    fi
done <<EOF
$old_pairs
EOF

if [ "$fail" -ne 0 ]; then
    echo "bench_gate: regression beyond 15% on gated ratios" >&2
    exit 1
fi
echo "bench_gate: ok"
