#!/usr/bin/env bash
# Architectural lints the compiler cannot express. Run from the repo root:
#
#   ci/arch_lint.sh               # lint this repository
#   ci/arch_lint.sh --self-test   # prove the lint catches what it claims
#   ci/arch_lint.sh --root DIR    # lint an arbitrary tree (self-test fixtures)
#
# Enforced invariants:
#
#   1. Wall-clock time (`std::time::Instant`) appears only in
#      `crates/harness` (plus the vendored criterion shim, which times
#      bench iterations by design). The runtime and kernel crates must
#      stay wall-clock-free so simulated and virtual execution remain
#      deterministic and the mpcheck schedule perturbation stays
#      reproducible.
#   2. `std::thread::sleep` and `std::time::SystemTime` stay out of
#      non-test code everywhere except the harness, `mp::check` (the
#      perturbation delays and the watchdog poll), the process
#      transports/launcher (which wait on real OS processes), and the
#      vendored shims. A sleep anywhere else would desynchronise the
#      deterministic schedules the DPOR explorer enumerates.
#   3. Every workspace crate opts into the shared `[workspace.lints]`
#      policy via `[lints] workspace = true`, so a new crate cannot
#      silently skip `forbid(unsafe_code)`.
#   4. No source file re-enables a workspace-forbidden lint with
#      `#[allow(...)]` / `#[expect(...)]` — the forbidden set is read
#      from the root manifest, not hard-coded here.
#
# Test modules (everything at or below a column-0 `#[cfg(test)]`) are
# exempt from the source scans: tests may sleep to provoke blocking
# paths.
set -u

root=""
selftest=0
while [ $# -gt 0 ]; do
    case "$1" in
        --root)
            root=$2
            shift 2
            ;;
        --self-test)
            selftest=1
            shift
            ;;
        *)
            echo "usage: arch_lint.sh [--root DIR] [--self-test]" >&2
            exit 2
            ;;
    esac
done

if [ "$selftest" -eq 1 ]; then
    self=$(cd "$(dirname "$0")" && pwd)/$(basename "$0")
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT

    # --- The passing fixture: a compliant miniature workspace ----------
    pass="$tmp/pass"
    mkdir -p "$pass/crates/ok/src"
    cat > "$pass/Cargo.toml" <<'EOF'
[workspace.lints.rust]
unsafe_code = "forbid"

[lints]
workspace = true
EOF
    cat > "$pass/crates/ok/Cargo.toml" <<'EOF'
[package]
name = "ok"

[lints]
workspace = true
EOF
    cat > "$pass/crates/ok/src/lib.rs" <<'EOF'
pub fn f() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn sleeps_are_fine_in_tests() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
EOF
    if ! "$self" --root "$pass" > "$tmp/pass.log" 2>&1; then
        echo "arch_lint --self-test: compliant fixture was rejected:" >&2
        cat "$tmp/pass.log" >&2
        exit 1
    fi

    # --- The failing fixture: one of each violation --------------------
    bad="$tmp/bad"
    mkdir -p "$bad/crates/bad/src"
    cat > "$bad/Cargo.toml" <<'EOF'
[workspace.lints.rust]
unsafe_code = "forbid"

[lints]
workspace = true
EOF
    # Manifest that skips the workspace lint policy.
    cat > "$bad/crates/bad/Cargo.toml" <<'EOF'
[package]
name = "bad"
EOF
    # Wall-clock, a stray sleep, and a forbidden-lint opt-out.
    cat > "$bad/crates/bad/src/lib.rs" <<'EOF'
#[allow(unsafe_code)]
pub fn f() {
    let _ = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
}
EOF
    if "$self" --root "$bad" > "$tmp/bad.log" 2>&1; then
        echo "arch_lint --self-test: violating fixture was accepted" >&2
        exit 1
    fi
    for needle in "Instant" "thread::sleep" "SystemTime" "does not opt into" \
        "allow(unsafe_code)"; do
        if ! grep -q "$needle" "$tmp/bad.log"; then
            echo "arch_lint --self-test: missing diagnostic for '$needle':" >&2
            cat "$tmp/bad.log" >&2
            exit 1
        fi
    done
    echo "arch_lint: self-test ok (pass and fail fixtures behave)"
    exit 0
fi

if [ -n "$root" ]; then
    cd "$root"
else
    cd "$(dirname "$0")/.."
fi

fail=0
err() {
    echo "arch_lint: $1" >&2
    fail=1
}

# Prints PATTERN matches in crates/**/*.rs as file:line: text, ignoring
# everything at or below a file's column-0 `#[cfg(test)]` marker.
scan() {
    local pattern=$1
    find crates -name '*.rs' -print0 2>/dev/null | sort -z | \
        xargs -0 -r awk -v pat="$pattern" '
            FNR == 1 { intest = 0 }
            /^#\[cfg\(test\)\]/ { intest = 1 }
            !intest && $0 ~ pat { print FILENAME ":" FNR ": " $0 }
        '
}

# --- 1. Instant stays inside the harness (and the criterion shim) -------
offenders=$(scan 'time::Instant|Instant::now' \
    | grep -v '^crates/harness/' \
    | grep -v '^crates/criterion/' || true)
if [ -n "$offenders" ]; then
    err "std::time::Instant outside crates/harness (wall-clock belongs to the harness only):
$offenders"
fi

# --- 2. Sleeps and SystemTime stay out of the deterministic layers ------
offenders=$(scan 'thread::sleep|time::SystemTime|SystemTime::now' \
    | grep -v '^crates/harness/' \
    | grep -v '^crates/mp/src/check\.rs' \
    | grep -v '^crates/mp/src/transport/' \
    | grep -v '^crates/criterion/' \
    | grep -v '^crates/parking_lot/' || true)
if [ -n "$offenders" ]; then
    err "thread::sleep / SystemTime outside the harness, mp::check and the transports \
(deterministic layers must not touch the wall clock):
$offenders"
fi

# --- 3. Every manifest opts into the workspace lint policy --------------
for manifest in Cargo.toml crates/*/Cargo.toml; do
    [ -f "$manifest" ] || continue
    if ! grep -q '^\[lints\]' "$manifest" \
        || ! grep -A1 '^\[lints\]' "$manifest" | grep -q '^workspace *= *true'; then
        err "$manifest does not opt into [workspace.lints] ([lints] workspace = true)"
    fi
done

# --- 4. The policy itself stays strict, and nothing opts back out ------
if ! grep -q '^unsafe_code *= *"forbid"' Cargo.toml; then
    err "root Cargo.toml must keep unsafe_code = \"forbid\" under [workspace.lints.rust]"
fi
forbidden=$(awk '
    /^\[workspace\.lints/ { insec = 1; next }
    /^\[/ { insec = 0 }
    insec && /= *"forbid"/ { print $1 }
' Cargo.toml)
for lint in $forbidden; do
    # Opt-outs are forbidden in test code too: forbid is crate-wide.
    optouts=$(grep -rnE "(allow|expect)\($lint\)" crates --include='*.rs' 2>/dev/null || true)
    if [ -n "$optouts" ]; then
        err "allow($lint) / expect($lint) found, but the workspace forbids $lint:
$optouts"
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "arch_lint: ok"
