#!/usr/bin/env bash
# Architectural lints the compiler cannot express. Run from the repo root:
#
#   ci/arch_lint.sh
#
# Enforced invariants:
#
#   1. Wall-clock time (`std::time::Instant`) appears only in
#      `crates/harness` (plus the vendored criterion shim, which times
#      bench iterations by design). The runtime and kernel crates must
#      stay wall-clock-free so simulated and virtual execution remain
#      deterministic and the mpcheck schedule perturbation stays
#      reproducible.
#   2. Every workspace crate opts into the shared `[workspace.lints]`
#      policy via `[lints] workspace = true`, so a new crate cannot
#      silently skip `forbid(unsafe_code)`.
#   3. No crate re-enables unsafe code locally.
set -u
cd "$(dirname "$0")/.."

fail=0
err() {
    echo "arch_lint: $1" >&2
    fail=1
}

# --- 1. Instant stays inside the harness (and the criterion shim) -------
offenders=$(grep -rnE 'time::Instant|Instant::now' crates \
    --include='*.rs' \
    | grep -v '^crates/harness/' \
    | grep -v '^crates/criterion/' || true)
if [ -n "$offenders" ]; then
    err "std::time::Instant outside crates/harness (wall-clock belongs to the harness only):
$offenders"
fi

# --- 2. Every manifest opts into the workspace lint policy --------------
for manifest in Cargo.toml crates/*/Cargo.toml; do
    if ! grep -q '^\[lints\]' "$manifest" \
        || ! grep -A1 '^\[lints\]' "$manifest" | grep -q '^workspace *= *true'; then
        err "$manifest does not opt into [workspace.lints] ([lints] workspace = true)"
    fi
done

# --- 3. The policy itself stays strict, and nothing opts back out ------
if ! grep -q '^unsafe_code *= *"forbid"' Cargo.toml; then
    err "root Cargo.toml must keep unsafe_code = \"forbid\" under [workspace.lints.rust]"
fi
optouts=$(grep -rnE 'allow\(unsafe_code\)' crates --include='*.rs' || true)
if [ -n "$optouts" ]; then
    err "allow(unsafe_code) found:
$optouts"
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "arch_lint: ok"
