//! The paper's qualitative findings, asserted against the regenerated
//! figures — the reproduction bar: orderings, order-of-magnitude gaps
//! and crossovers, not absolute testbed numbers.

use hpcbench::figures::{self, FigureConfig};
use hpcbench::ratios;
use machines::systems;

fn cfg() -> FigureConfig {
    FigureConfig {
        max_procs: 16,
        imb_bytes: 1 << 20,
        ..FigureConfig::default()
    }
}

fn series_value(fig: &hpcbench::Figure, name_part: &str, x: f64) -> f64 {
    fig.series
        .iter()
        .find(|s| s.name.contains(name_part))
        .unwrap_or_else(|| panic!("series {name_part} missing"))
        .points
        .iter()
        .find(|p| p.0 == x)
        .unwrap_or_else(|| panic!("{name_part} has no point at {x}"))
        .1
}

/// Fig. 7/8: "performance of vector systems is an order of magnitude
/// better than scalar systems" on the 1 MB reductions.
#[test]
fn reductions_cluster_by_architecture() {
    for fig in [figures::fig07(&cfg()), figures::fig08(&cfg())] {
        let p = 16.0;
        let sx8 = series_value(&fig, "NEC", p);
        let x1 = series_value(&fig, "X1 (MSP)", p);
        let worst_vector = sx8.max(x1);
        for scalar in ["BX2", "Opteron", "Xeon"] {
            let t = series_value(&fig, scalar, p);
            // Every scalar system behind every vector system; the SX-8
            // ahead of the scalar field by a large factor.
            assert!(
                t > 1.5 * worst_vector,
                "{}: {scalar} at {t} vs vector {worst_vector}",
                fig.id
            );
            assert!(t > 2.5 * sx8, "{}: {scalar} at {t} vs SX-8 {sx8}", fig.id);
        }
        // "More than one order of magnitude difference between the
        // fastest and slowest platforms" (Fig. 7).
        let opt = series_value(&fig, "Opteron", p);
        assert!(opt > 8.0 * sx8, "{}: spread {opt} vs {sx8}", fig.id);
        assert!(sx8 < x1, "{}: SX-8 must beat the X1", fig.id);
    }
}

/// Fig. 12's full ordering at 1 MB:
/// NEC SX-8 > Cray X1 > SGI Altix BX2 > Dell Xeon > Cray Opteron.
#[test]
fn alltoall_ordering_matches_fig12() {
    let fig = figures::fig12(&cfg());
    let p = 16.0;
    let order = ["NEC", "X1 (MSP)", "BX2", "Xeon", "Opteron"];
    let times: Vec<f64> = order.iter().map(|n| series_value(&fig, n, p)).collect();
    for w in times.windows(2) {
        assert!(w[0] < w[1], "fig12 ordering violated: {times:?}");
    }
}

/// Fig. 13: every system is fastest at 2 processes (shared memory), and
/// the NEC SX-8's 2-process Sendrecv is an order of magnitude above the
/// clusters'.
#[test]
fn sendrecv_shared_memory_peak() {
    let fig = figures::fig13(&cfg());
    for s in &fig.series {
        let at2 = s.points.first().expect("2-proc point").1;
        let best = s.points.iter().map(|p| p.1).fold(0.0, f64::max);
        assert!(
            at2 >= best * (1.0 - 1e-9),
            "{}: 2 procs must be fastest ({at2} vs {best})",
            s.name
        );
    }
    let sx8 = series_value(&fig, "NEC", 2.0);
    let xeon = series_value(&fig, "Xeon", 2.0);
    assert!(sx8 > 10.0 * xeon);
}

/// Fig. 14: "the second best system is the Xeon Cluster and its
/// performance is almost constant" once past the shared-memory point.
#[test]
fn exchange_xeon_is_flat() {
    let fig = figures::fig14(&cfg());
    let xeon: Vec<f64> = fig
        .series
        .iter()
        .find(|s| s.name.contains("Xeon"))
        .unwrap()
        .points
        .iter()
        .skip(1) // drop the 2-proc shared-memory point
        .map(|p| p.1)
        .collect();
    let (min, max) = xeon.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    });
    assert!(max / min < 2.5, "Xeon Exchange not flat: {xeon:?}");
}

/// Fig. 15: the broadcast ranking "NEC SX-8, SGI Altix BX2, Cray X1,
/// Xeon Cluster and Cray Opteron Cluster" (best to worst). The model
/// reproduces the outer ranking exactly; BX2 and X1 swap in the middle
/// band at small processor counts (recorded in EXPERIMENTS.md), so the
/// middle pair is order-insensitive here.
#[test]
fn broadcast_ranking_matches_fig15() {
    let fig = figures::fig15(&cfg());
    let p = 16.0;
    let sx8 = series_value(&fig, "NEC", p);
    let bx2 = series_value(&fig, "BX2", p);
    let x1 = series_value(&fig, "X1 (MSP)", p);
    let xeon = series_value(&fig, "Xeon", p);
    let opt = series_value(&fig, "Opteron", p);
    assert!(sx8 < bx2.min(x1), "SX-8 best: {sx8}");
    assert!(
        bx2.max(x1) < xeon,
        "middle band beats the Xeon: {bx2}/{x1} vs {xeon}"
    );
    assert!(xeon < opt, "Opteron worst: {xeon} vs {opt}");
    // "The broadcast bandwidth of NEC SX-8 is more than an order of
    // magnitude higher than that of all other presented systems."
    assert!(opt > 10.0 * sx8);
}

/// Fig. 2's balance story at the paper's scales (the analytic HPL model
/// and ring simulation are cheap enough to run at full size):
/// * the Altix BX2's in-box ratio is far above the SX-8's;
/// * beyond one 512-CPU box it collapses below the SX-8 (the crossover);
/// * NUMALINK3 sits about 4x below NUMALINK4;
/// * the SX-8 curve is flat from 64 to 576 CPUs.
#[test]
fn fig2_balance_crossover_story() {
    let b_per_kflop = |m: &machines::Machine, p: usize| {
        let (ring_bw, _) = hpcc::sim::random_ring(m, p);
        let hpl = hpcc::sim::hpl(m, p);
        ring_bw * p as f64 / hpl * 1000.0
    };
    let bx2 = systems::altix_bx2();
    let nl3 = systems::altix_nl3();
    let sx8 = systems::nec_sx8();

    let bx2_box = b_per_kflop(&bx2, 512);
    let bx2_multi = b_per_kflop(&bx2, 2048);
    let sx8_mid = b_per_kflop(&sx8, 128);
    let sx8_big = b_per_kflop(&sx8, 576);
    let nl3_box = b_per_kflop(&nl3, 512);

    assert!(
        bx2_box > 2.0 * sx8_big,
        "in-box Altix above SX-8: {bx2_box} vs {sx8_big}"
    );
    assert!(
        bx2_multi < sx8_big,
        "multi-box Altix collapses below SX-8: {bx2_multi}"
    );
    assert!(
        bx2_box > 3.0 * nl3_box,
        "NUMALINK4 ~4x NUMALINK3: {bx2_box} vs {nl3_box}"
    );
    let flatness = sx8_mid.max(sx8_big) / sx8_mid.min(sx8_big);
    assert!(
        flatness < 1.5,
        "SX-8 curve must be flat: {sx8_mid} vs {sx8_big}"
    );
}

/// Fig. 4: "the Byte/Flop for NEC SX-8 is consistently above 2.67, for
/// SGI Altix it is above 0.36 and for the Cray Opteron between 0.84 and
/// 1.07" — checked as floors (and a loose ceiling for the Opteron).
#[test]
fn fig4_stream_balance_bands() {
    let stream_bf = |m: &machines::Machine, p: usize| {
        let hpl = hpcc::sim::hpl(m, p);
        m.node.stream_bw / 1e9 * p as f64 / hpl
    };
    for p in [16usize, 64] {
        assert!(stream_bf(&systems::nec_sx8(), p) > 2.67);
        assert!(stream_bf(&systems::altix_bx2(), p) > 0.36);
        let opt = stream_bf(&systems::cray_opteron(), p);
        assert!((0.8..2.0).contains(&opt), "Opteron B/F {opt}");
    }
}

/// Fig. 5 / Table 3: the normalised comparison marks the SX-8 best in the
/// memory-and-network columns (STREAM-copy ratio), as Section 4.1.2 says.
#[test]
fn fig5_sx8_wins_stream_column() {
    let (rows, _) = ratios::normalise(&figures::kiviat_rows(&cfg()));
    let sx8 = rows.iter().find(|r| r.machine.contains("NEC")).unwrap();
    // Column 4 = G-StreamCopy/G-HPL.
    assert_eq!(sx8.values[4], 1.0, "SX-8 must top the STREAM/HPL column");
}

/// Tables render at full paper scale without panicking and with the
/// expected shapes (smoke test of the whole pipeline at default config,
/// kept at a size that stays fast in debug builds).
#[test]
fn quick_figure_pipeline_end_to_end() {
    let cfg = FigureConfig::quick();
    let figs = figures::all_figures(&cfg);
    assert_eq!(figs.len(), 14, "figs 1-4 and 6-15");
    for f in &figs {
        assert!(!f.series.is_empty(), "{} empty", f.id);
        let csv = f.to_csv();
        assert!(csv.lines().count() > f.series.len());
    }
    let tables = figures::all_tables(&cfg);
    assert_eq!(tables.len(), 4, "tables 1-3 plus fig5");
}
