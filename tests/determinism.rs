//! Determinism guarantees: regenerated figures are bit-stable — the
//! property that makes `out/` diffable across runs and machines.

use hpcbench::figures::{self, FigureConfig};

#[test]
fn figure_regeneration_is_bit_stable() {
    let cfg = FigureConfig::quick();
    let a = figures::fig12(&cfg);
    let b = figures::fig12(&cfg);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(hpcbench::svg::render(&a), hpcbench::svg::render(&b));
}

#[test]
fn balance_sweeps_are_bit_stable() {
    let cfg = FigureConfig::quick();
    let a = figures::hpcc_sweeps(&cfg);
    let b = figures::hpcc_sweeps(&cfg);
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.machine.name, sb.machine.name);
        for (ra, rb) in sa.rows.iter().zip(&sb.rows) {
            assert_eq!(ra.ghpl, rb.ghpl, "{}", sa.machine.name);
            assert_eq!(ra.ring_bw, rb.ring_bw, "{}", sa.machine.name);
            assert_eq!(ra.ptrans, rb.ptrans, "{}", sa.machine.name);
        }
    }
}

#[test]
fn tables_are_bit_stable() {
    let cfg = FigureConfig::quick();
    assert_eq!(
        figures::table3(&cfg).to_csv(),
        figures::table3(&cfg).to_csv()
    );
    assert_eq!(figures::fig05(&cfg).to_csv(), figures::fig05(&cfg).to_csv());
}

#[test]
fn simulated_measurements_are_deterministic() {
    for m in machines::systems::paper_systems() {
        let a = imb::sim::simulate(&m, imb::Benchmark::Alltoall, 8, 1 << 20);
        let b = imb::sim::simulate(&m, imb::Benchmark::Alltoall, 8, 1 << 20);
        assert_eq!(a.t_max_us(), b.t_max_us(), "{}", m.name);
    }
}

#[test]
fn native_results_are_value_deterministic() {
    // Wall-clock timings vary; computed *values* must not.
    let run = || {
        mp::run(4, |comm| {
            let r = hpcc::hpl::run(
                comm,
                &hpcc::hpl::HplConfig {
                    n: 64,
                    nb: 8,
                    ..hpcc::hpl::HplConfig::default()
                },
            );
            r.residual
        })[0]
    };
    assert_eq!(
        run(),
        run(),
        "HPL residual must be bit-identical across runs"
    );
}
