//! Integration tests for the unified harness layer: registry
//! completeness across both suites, cross-mode record identity, and the
//! statistics invariants of the shared `Record` schema.

use harness::{Mode, ProcGrid, Record, RunPlan, Runner, Stats, Suite};
use hpcbench::registry::{hpcc_names, imb_names, registry};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Registry completeness
// ----------------------------------------------------------------------

#[test]
fn registry_covers_both_suites_completely() {
    let reg = registry();
    let hpcc_expected = [
        "G-HPL",
        "G-PTRANS",
        "G-RandomAccess",
        "EP-STREAM",
        "G-FFT",
        "EP-DGEMM",
        "RandomRing",
    ];
    let imb_expected = [
        "PingPong",
        "PingPing",
        "Sendrecv",
        "Exchange",
        "Bcast",
        "Allgather",
        "Allgatherv",
        "Alltoall",
        "Reduce",
        "Reduce_scatter",
        "Allreduce",
        "Barrier",
    ];
    assert_eq!(hpcc_names(), hpcc_expected.to_vec());
    for name in imb_expected {
        assert!(imb_names().contains(&name), "{name} missing from registry");
    }
    assert_eq!(reg.len(), hpcc_expected.len() + imb_expected.len());

    for w in reg.iter() {
        // Metadata consistency: every entry names itself coherently,
        // supports all three execution modes and declares sane bounds.
        assert_eq!(reg.get(w.meta.name).unwrap().meta.suite, w.meta.suite);
        assert!(w.meta.min_procs >= 1, "{}", w.meta.name);
        for mode in Mode::ALL {
            assert!(w.supports(mode), "{} lacks {mode}", w.meta.name);
        }
        match w.meta.suite {
            Suite::Hpcc => {
                assert!(!w.meta.sized, "HPCC components are not message-sized");
                assert!(hpcc_names().contains(&w.meta.name));
            }
            Suite::Imb => {
                assert!(!w.meta.pow2_procs, "IMB runs at any world size");
                assert!(imb_names().contains(&w.meta.name));
            }
        }
    }
}

#[test]
fn registry_metadata_matches_suite_declarations() {
    let reg = registry();
    for b in imb::Benchmark::ALL {
        let w = reg.get(b.name()).expect("every IMB benchmark registered");
        assert_eq!(w.meta.metric, b.metric(), "{b}");
        assert_eq!(w.meta.min_procs, b.min_procs(), "{b}");
        assert_eq!(w.meta.sized, b.sized(), "{b}");
    }
    for c in hpcc::Component::ALL {
        let w = reg.get(c.name()).expect("every HPCC component registered");
        assert_eq!(w.meta.metric, c.metric(), "{}", c.name());
        assert_eq!(w.meta.pow2_procs, c.pow2_procs(), "{}", c.name());
    }
}

// ----------------------------------------------------------------------
// Cross-mode identity: one workload, three modes, comparable records
// ----------------------------------------------------------------------

#[test]
fn native_and_virtual_records_share_identity_fields() {
    let reg = registry();
    let machine = machines::systems::dell_xeon();
    let runner = Runner::smoke();
    for name in ["PingPong", "Alltoall", "EP-DGEMM"] {
        let w = reg.get(name).unwrap();
        let bytes = w.meta.sized.then_some(4096);
        let native = w
            .run(Mode::Native, &runner, None, 2, bytes)
            .unwrap_or_else(|| panic!("{name} native"));
        let virt = w
            .run(Mode::Virtual, &runner, Some(&machine), 2, bytes)
            .unwrap_or_else(|| panic!("{name} virtual"));
        // identity() = (benchmark, suite, procs, bytes): the cross-mode
        // join key for comparing a native run with its virtual replay.
        assert_eq!(native[0].identity(), virt[0].identity(), "{name}");
        assert_eq!(native[0].mode, Mode::Native);
        assert_eq!(virt[0].mode, Mode::Virtual);
        assert_ne!(native[0].machine, virt[0].machine);
    }
}

#[test]
fn one_plan_runs_all_three_modes_through_one_registry() {
    let reg = registry();
    let plan = RunPlan {
        backend: harness::Backend::Local,
        modes: vec![Mode::Native, Mode::Simulated, Mode::Virtual],
        machines: vec![machines::systems::nec_sx8()],
        procs: ProcGrid::List(vec![4]),
        bytes: vec![65536],
        workloads: Some(vec!["Allreduce"]),
        runner: Runner::smoke(),
    };
    let records = plan.execute(&reg);
    let modes: Vec<Mode> = records.iter().map(|r| r.mode).collect();
    assert_eq!(modes, vec![Mode::Native, Mode::Simulated, Mode::Virtual]);
    let mut identities: Vec<_> = records.iter().map(Record::identity).collect();
    identities.dedup();
    assert_eq!(identities.len(), 1, "same workload identity across modes");
    assert!(records.iter().all(|r| r.passed));
}

// ----------------------------------------------------------------------
// Statistics invariants (property-based)
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any set of per-rank timings, the IMB statistics are ordered
    /// (t_min <= t_avg <= t_max) and best-of equals t_min.
    #[test]
    fn stats_are_ordered_and_best_of_is_min(
        per_rank in prop::collection::vec(1e-3f64..1e7, 1..32),
        reps in 1usize..2000,
    ) {
        let s = Stats::across(&per_rank, reps);
        prop_assert!(s.is_ordered(), "{s:?}");
        prop_assert_eq!(s.best_of_us(), s.t_min_us);
        prop_assert_eq!(s.repetitions, reps);
        let lo = per_rank.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_rank.iter().cloned().fold(0.0f64, f64::max);
        prop_assert_eq!(s.t_min_us, lo);
        prop_assert_eq!(s.t_max_us, hi);
    }

    /// Degenerate (single-shot) stats collapse to one value and stay
    /// ordered.
    #[test]
    fn deterministic_stats_collapse(t in 0.0f64..1e9) {
        let s = Stats::deterministic(t);
        prop_assert!(s.is_ordered());
        prop_assert_eq!(s.t_min_us, t);
        prop_assert_eq!(s.t_avg_us, t);
        prop_assert_eq!(s.t_max_us, t);
        prop_assert_eq!(s.best_of_us(), t);
    }
}

/// Measured native records obey the same ordering invariant end to end.
#[test]
fn native_measurements_have_ordered_stats() {
    for b in [imb::Benchmark::Allreduce, imb::Benchmark::PingPong] {
        let m = imb::run_native(b, 2, 1024, 5);
        assert!(m.stats.is_ordered(), "{b}: {:?}", m.stats);
        assert_eq!(m.stats.best_of_us(), m.t_min_us(), "{b}");
    }
}
