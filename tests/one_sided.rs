//! Cross-crate one-sided communication tests: the RMA window machinery
//! (`mp::rma`) driven through the IMB-EXT benchmarks (`imb::ext`) and
//! checked against the simulated models.

use imb::{ExtBenchmark, SyncScheme};
use mp::{Op, Window};

/// A halo-exchange stencil via one-sided puts — the application pattern
/// one-sided communication exists for (each rank writes its boundary
/// into its neighbours' ghost cells, no receives posted).
#[test]
fn halo_exchange_with_put_and_fence() {
    let n = 6;
    let width = 16usize;
    let results = mp::run(n, |comm| {
        // Window layout: [left ghost | interior | right ghost].
        let win = Window::create::<f64>(comm, width + 2);
        let me = comm.rank();
        // Fill the interior.
        let interior: Vec<f64> = (0..width).map(|i| (me * width + i) as f64).collect();
        win.put(&interior, me, 1);
        win.fence();
        // Push my boundary cells into the neighbours' ghosts.
        let left = (me + n - 1) % n;
        let right = (me + 1) % n;
        win.put(&interior[..1], left, width + 1); // my first -> left's right ghost
        win.put(&interior[width - 1..], right, 0); // my last -> right's left ghost
        win.fence();
        let mut all = vec![0.0f64; width + 2];
        win.get(&mut all, me, 0);
        all
    });
    for (r, got) in results.iter().enumerate() {
        let left_neighbor = (r + n - 1) % n;
        let right_neighbor = (r + 1) % n;
        assert_eq!(
            got[0],
            (left_neighbor * width + width - 1) as f64,
            "rank {r} left ghost"
        );
        assert_eq!(
            got[width + 1],
            (right_neighbor * width) as f64,
            "rank {r} right ghost"
        );
        for i in 0..width {
            assert_eq!(got[1 + i], (r * width + i) as f64);
        }
    }
}

/// A one-sided allreduce built from accumulate + fence matches the
/// two-sided collective.
#[test]
fn accumulate_reduction_matches_allreduce() {
    let n = 5;
    let len = 8usize;
    let results = mp::run(n, |comm| {
        let me = comm.rank();
        let contribution: Vec<f64> = (0..len).map(|i| ((me + 1) * (i + 2)) as f64).collect();

        // One-sided: everyone accumulates into rank 0's window.
        let win = Window::create::<f64>(comm, len);
        win.fence();
        win.accumulate(&contribution, 0, 0, Op::Sum);
        win.fence();
        let mut onesided = vec![0.0f64; len];
        win.get(&mut onesided, 0, 0);

        // Two-sided reference.
        let mut reference = contribution;
        comm.allreduce(&mut reference, Op::Sum);
        (onesided, reference)
    });
    for (r, (os, re)) in results.iter().enumerate() {
        assert_eq!(os, re, "rank {r}");
    }
}

/// All EXT benchmark/scheme combinations run natively and produce times
/// consistent with their simulated schedules' structure (put one-way
/// cheaper than get round trip on every machine model).
#[test]
fn ext_matrix_native_and_simulated() {
    for b in ExtBenchmark::ALL {
        for s in SyncScheme::ALL {
            let m = imb::ext::run_native(b, s, 2048, 4);
            assert!(m.t_us > 0.0 && m.mbs > 0.0, "native {b}/{s}");
        }
    }
    for machine in machines::systems::paper_systems() {
        let put = imb::ext::simulate(&machine, ExtBenchmark::UnidirPut, SyncScheme::Lock, 1 << 20);
        let get = imb::ext::simulate(&machine, ExtBenchmark::UnidirGet, SyncScheme::Lock, 1 << 20);
        assert!(
            get.t_us > put.t_us,
            "{}: get {} !> put {}",
            machine.name,
            get.t_us,
            put.t_us
        );
    }
}

/// PSCW restricts exposure to the named origin group; serialised epochs
/// order writes from two origins.
#[test]
fn pscw_two_origin_epochs_serialise() {
    let results = mp::run(3, |comm| {
        let win = Window::create::<u64>(comm, 1);
        let me = comm.rank();
        match me {
            0 => {
                // Expose to origin 1, then to origin 2 — the later epoch's
                // write wins.
                win.post(&[1]);
                win.wait(&[1]);
                win.post(&[2]);
                win.wait(&[2]);
                let mut v = [0u64];
                win.get(&mut v, 0, 0);
                v[0]
            }
            1 => {
                win.start(&[0]);
                win.put(&[111u64], 0, 0);
                win.complete(&[0]);
                0
            }
            _ => {
                win.start(&[0]);
                win.put(&[222u64], 0, 0);
                win.complete(&[0]);
                0
            }
        }
    });
    assert_eq!(
        results[0], 222,
        "the second exposure epoch's write is final"
    );
}

/// b_eff (the paper's [14]) runs natively and on every machine model.
#[test]
fn beff_native_and_simulated() {
    let cfg = hpcc::beff::BeffConfig {
        l_max: 1 << 14,
        random_patterns: 1,
        iters: 2,
        seed: 3,
    };
    let native = hpcc::beff::run_native(4, &cfg);
    assert!(native.b_eff > 0.0);
    assert_eq!(native.by_size.len(), 15); // 2^14 -> 21 capped by dedup

    for m in machines::systems::paper_systems() {
        let r = hpcc::beff::simulate(&m, 16.min(m.max_cpus), &hpcc::beff::BeffConfig::default());
        assert!(r.b_eff > 0.0, "{}", m.name);
        assert!(r.by_size.len() == 21, "{}", m.name);
    }
}
