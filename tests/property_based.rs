//! Cross-crate property tests: collectives correct for arbitrary shapes,
//! machine models sane under parameter perturbation, simulator invariants
//! under random schedules.

use proptest::prelude::*;

use machines::{Machine, NetworkModel, NodeModel, SystemClass, TopologyKind};
use simnet::{Round, Schedule, Transfer};

/// Arbitrary-but-valid machine models.
fn arb_machine() -> impl Strategy<Value = Machine> {
    (
        1usize..=8,      // cpus per node
        0.5f64..4.0,     // clock
        1.0f64..20.0,    // peak gflops
        0.5f64..50.0,    // stream GB/s per cpu
        0.1f64..20.0,    // link GB/s
        0.5f64..10.0,    // latency us
        prop::bool::ANY, // duplex
        0usize..4,       // topology selector
    )
        .prop_map(
            |(cpus, clock, peak, stream, link, lat, duplex, topo)| Machine {
                name: "prop",
                class: SystemClass::Scalar,
                node: NodeModel {
                    cpus,
                    clock_ghz: clock,
                    peak_gflops: peak,
                    stream_bw: stream * 1e9,
                    mem_bw_node: stream * 1e9 * cpus as f64 * 1.5,
                    dgemm_eff: 0.9,
                    hpl_eff: 0.7,
                    mem_latency_us: 0.1,
                    random_concurrency: 4.0,
                },
                net: NetworkModel {
                    topology: match topo {
                        0 => TopologyKind::FatTree {
                            arity: 4,
                            blocking: 1.0,
                            blocking_from: 1,
                        },
                        1 => TopologyKind::Hypercube,
                        2 => TopologyKind::Crossbar,
                        _ => TopologyKind::Clos { radix: 8, spine: 4 },
                    },
                    link_bw: link * 1e9,
                    nic_duplex: duplex,
                    mpi_latency_us: lat,
                    per_hop_us: 0.2,
                    overhead_us: 0.5,
                    intra_latency_us: lat / 2.0,
                    intra_bw: stream * 1e9 / 2.0,
                    per_msg_bw: link * 1e9,
                    plain_link_bw: link * 1e9,
                },
                max_cpus: cpus * 64,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated machine validates and prices any IMB benchmark to a
    /// positive, finite time that is monotone in message size.
    #[test]
    fn any_machine_simulates_sanely(m in arb_machine(), bytes in 64u64..1_000_000) {
        prop_assert!(m.validate().is_ok());
        let p = (2 * m.node.cpus).min(m.max_cpus);
        for bench in [imb::Benchmark::Allreduce, imb::Benchmark::Alltoall,
                      imb::Benchmark::Sendrecv] {
            let t1 = imb::sim::simulate(&m, bench, p, bytes).t_max_us();
            let t2 = imb::sim::simulate(&m, bench, p, bytes * 4).t_max_us();
            prop_assert!(t1.is_finite() && t1 > 0.0, "{bench}: {t1}");
            prop_assert!(t2 > t1, "{bench} not monotone: {t2} !> {t1}");
        }
    }

    /// Native allreduce equals the scalar reference for arbitrary world
    /// sizes, vector lengths and contents.
    #[test]
    fn allreduce_matches_reference(
        n in 1usize..10,
        values in prop::collection::vec(-1e6f64..1e6, 1..40),
    ) {
        let len = values.len();
        let results = mp::run(n, |comm| {
            let mut buf: Vec<f64> = values
                .iter()
                .map(|v| v + comm.rank() as f64)
                .collect();
            comm.allreduce(&mut buf, mp::Op::Sum);
            buf
        });
        let rank_sum = (n * (n - 1) / 2) as f64;
        for got in &results {
            for i in 0..len {
                let expect = values[i] * n as f64 + rank_sum;
                prop_assert!(
                    (got[i] - expect).abs() < 1e-6 * expect.abs().max(1.0),
                    "elem {i}: {} vs {expect}", got[i]
                );
            }
        }
    }

    /// Alltoall delivers every (src, dst) block intact for arbitrary
    /// shapes, through whichever algorithm the dispatcher picks.
    #[test]
    fn alltoall_permutes_blocks_correctly(n in 1usize..12, block in 0usize..24) {
        let results = mp::run(n, |comm| {
            let me = comm.rank() as u64;
            let send: Vec<u64> = (0..n as u64)
                .flat_map(|d| (0..block as u64).map(move |i| me * 1_000_000 + d * 1000 + i))
                .collect();
            let mut recv = vec![0u64; n * block];
            comm.alltoall(&send, &mut recv);
            recv
        });
        for (r, got) in results.iter().enumerate() {
            for s in 0..n {
                for i in 0..block {
                    let expect = (s as u64) * 1_000_000 + (r as u64) * 1000 + i as u64;
                    prop_assert_eq!(got[s * block + i], expect);
                }
            }
        }
    }

    /// The DIF distributed FFT inverts for arbitrary power-of-two shapes.
    #[test]
    fn distributed_fft_roundtrips(log_p in 0u32..3, extra in 4u32..8) {
        let p = 1usize << log_p;
        let log2_n = log_p + extra + log_p.max(1);
        let results = mp::run(p, |comm| {
            hpcc::fft_dist::run(comm, &hpcc::fft_dist::FftConfig { log2_n }).passed
        });
        prop_assert!(results.iter().all(|&ok| ok));
    }

    /// Random schedules execute with non-decreasing clocks and a
    /// completion no earlier than any single transfer's serialisation.
    #[test]
    fn random_schedules_execute_causally(
        n in 2usize..8,
        rounds in prop::collection::vec(
            prop::collection::vec((0usize..8, 0usize..8, 0u64..100_000), 0..6),
            1..5,
        ),
    ) {
        let mut sched = Schedule::new(n);
        for round in rounds {
            let transfers: Vec<Transfer> = round
                .into_iter()
                .filter(|(s, d, _)| s % n != d % n)
                .map(|(s, d, b)| Transfer { src: s % n, dst: d % n, bytes: b })
                .collect();
            sched.push(Round::of(transfers));
        }
        prop_assert!(sched.validate().is_ok());
        let m = machines::systems::dell_xeon();
        let sim = machines::ClusterSim::new(&m, n);
        let t = sim.run_fresh(&sched);
        prop_assert!(t.as_secs().is_finite());
        let bytes = sched.total_bytes();
        if bytes > 0 {
            // The whole schedule cannot beat a single NIC moving the
            // biggest message.
            let biggest = sched
                .rounds
                .iter()
                .flat_map(|r| r.transfers.iter().map(|t| t.bytes))
                .max()
                .unwrap_or(0);
            prop_assert!(t.as_secs() >= biggest as f64 / m.net.link_bw / 2.0);
        }
    }
}
