//! Cross-crate validation: the *native* benchmark executions (real data
//! movement on the `mp` runtime) move exactly the messages the schedule
//! generators predict, which is what makes pricing those schedules on
//! the machine models a faithful simulation of the benchmarks.

use simnet::Transfer;

fn sorted(mut t: Vec<Transfer>) -> Vec<Transfer> {
    t.sort_unstable();
    t
}

/// Every sized IMB benchmark's native execution matches its simulated
/// schedule, message for message.
#[test]
fn imb_native_traces_match_sim_schedules() {
    for bench in imb::Benchmark::ALL {
        let procs = 6usize.max(bench.min_procs());
        let bytes = 4096u64;
        let (_, trace) = mp::run_traced(procs, |comm| {
            imb::native::run_on(comm, bench, bytes, 1);
        });
        // The native run has one warm-up and one timed iteration.
        let sched_procs = match bench.class() {
            imb::Class::SingleTransfer => 2,
            _ => procs,
        };
        let one = imb::sim::schedule_for(bench, sched_procs, bytes);
        let mut expected = one.transfer_multiset();
        expected.extend(one.transfer_multiset());
        // Plus the barrier between warm-up and timed loop, plus the
        // result reduction (3 allreduces) — strip those by filtering the
        // exact multiset of the benchmark payload sizes instead.
        let expected = sorted(expected);
        let traced: Vec<Transfer> = trace
            .into_iter()
            .filter(|t| {
                expected
                    .binary_search_by(|e| (e.src, e.dst, e.bytes).cmp(&(t.src, t.dst, t.bytes)))
                    .is_ok()
            })
            .collect();
        if bench == imb::Benchmark::ReduceScatter {
            // The schedule now reproduces the native per-rank word split
            // (e.g. 86/86/85/... words) exactly, and the payload sizes
            // cannot collide with the 0-byte barrier or the 8-byte stat
            // reductions — so demand exact multiset equality.
            assert_eq!(
                sorted(traced),
                expected,
                "{bench}: native payload transfers must equal the schedule's multiset"
            );
            continue;
        }
        // Every expected transfer appears (the filter keeps only matching
        // shapes; counts must cover 2 iterations).
        assert!(
            traced.len() >= expected.len(),
            "{bench}: traced {} matching transfers, schedule expects {}",
            traced.len(),
            expected.len()
        );
    }
}

/// Rooted-collective rotation: a traced Bcast from each root matches the
/// root-parameterised generator.
#[test]
fn bcast_root_rotation_traces() {
    let n = 7;
    let len = 64usize;
    for root in 0..n {
        let (_, trace) = mp::run_traced(n, |comm| {
            let mut buf = vec![0.0f64; len];
            if comm.rank() == root {
                buf.iter_mut().enumerate().for_each(|(i, v)| *v = i as f64);
            }
            mp::coll::bcast::binomial(comm, &mut buf, root);
        });
        let sched = mp::sched::bcast::binomial(n, root, (len * 8) as u64);
        assert_eq!(sorted(trace), sched.transfer_multiset(), "root {root}");
    }
}

/// The allreduce dispatcher and its schedule mirror agree across the
/// short/long and power-of-two/odd boundary.
#[test]
fn allreduce_dispatch_agreement_across_shapes() {
    for n in [2usize, 3, 4, 6, 8] {
        for len in [8usize, 240, 6000] {
            let (_, trace) = mp::run_traced(n, |comm| {
                let mut buf = vec![1.0f64; len];
                comm.allreduce(&mut buf, mp::Op::Sum);
            });
            let sched = mp::sched::allreduce::auto(n, (len * 8) as u64, 8);
            assert_eq!(sorted(trace), sched.transfer_multiset(), "n={n} len={len}");
        }
    }
}

/// Simulated timings respect byte monotonicity for every benchmark on
/// every machine: more payload never finishes earlier.
#[test]
fn simulated_times_are_monotone_in_message_size() {
    for m in machines::systems::paper_systems() {
        for bench in imb::Benchmark::ALL {
            if !bench.sized() {
                continue;
            }
            let p = 8.min(m.max_cpus);
            let small = imb::sim::simulate(&m, bench, p, 1024).t_max_us();
            let large = imb::sim::simulate(&m, bench, p, 1 << 20).t_max_us();
            assert!(large > small, "{bench} on {}: {large} !> {small}", m.name);
        }
    }
}

/// Simulated collective times grow (weakly) with the processor count.
#[test]
fn simulated_times_grow_with_procs() {
    let m = machines::systems::dell_xeon();
    for bench in [
        imb::Benchmark::Allreduce,
        imb::Benchmark::Alltoall,
        imb::Benchmark::Allgather,
        imb::Benchmark::Bcast,
    ] {
        let t16 = imb::sim::simulate(&m, bench, 16, 1 << 20).t_max_us();
        let t128 = imb::sim::simulate(&m, bench, 128, 1 << 20).t_max_us();
        assert!(t128 > t16, "{bench}: {t128} !> {t16}");
    }
}

/// Three-mode agreement: the real benchmark code *executed* under
/// virtual time lands near the price of its generated schedule, for
/// every collective benchmark on two very different machines.
#[test]
fn virtual_execution_agrees_with_schedule_replay() {
    for machine in [
        machines::systems::nec_sx8(),
        machines::systems::cray_opteron(),
    ] {
        for bench in [
            imb::Benchmark::Allreduce,
            imb::Benchmark::Alltoall,
            imb::Benchmark::Allgather,
            imb::Benchmark::Bcast,
            imb::Benchmark::ReduceScatter,
        ] {
            let executed = imb::run_virtual(&machine, bench, 8, 1 << 18, 3).t_max_us();
            let replayed = imb::sim::simulate(&machine, bench, 8, 1 << 18).t_max_us();
            let ratio = executed / replayed;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{bench} on {}: executed {executed} vs replayed {replayed}",
                machine.name
            );
        }
    }
}

/// Virtual execution preserves program semantics exactly: an HPCC PTRANS
/// run on a modelled machine still verifies its closed-form result.
#[test]
fn hpcc_verifies_under_virtual_execution() {
    let net = machines::SharedClusterNet::new(&machines::systems::dell_xeon(), 4);
    let (results, clocks) = mp::run_virtual(4, Box::new(net), |comm| {
        hpcc::ptrans::run(comm, &hpcc::ptrans::PtransConfig { n: 32 }).passed
    });
    assert!(
        results.iter().all(|&ok| ok),
        "PTRANS must verify under virtual time"
    );
    assert!(clocks.iter().any(|c| c.as_us() > 0.0));
}
