//! The misuse gallery: known-bad `mp` programs that `mpcheck` must
//! diagnose *by class*, with concrete evidence (cycle members, diverging
//! call sites), and fast — each diagnosis must land in well under two
//! seconds, i.e. come from the wait-for graph or the trace, never from a
//! wall-clock timeout.

use std::time::Duration;

use mpcheck::{check, CheckOptions, FindingClass, Settings};

/// Single-seed options with a fast detector poll, so a deadlock diagnosis
/// arrives in tens of milliseconds.
fn fast() -> CheckOptions {
    CheckOptions {
        seeds: vec![0],
        settings: Settings {
            poll: Duration::from_millis(2),
            ..Settings::default()
        },
    }
}

/// Multi-seed options (perturbation on for nonzero seeds).
fn sweep() -> CheckOptions {
    CheckOptions {
        seeds: vec![0, 1, 2],
        settings: Settings {
            poll: Duration::from_millis(2),
            ..Settings::default()
        },
    }
}

#[test]
fn two_rank_head_to_head_receive_cycle() {
    // The classic send/send deadlock: in mp, sends are eager (they buffer
    // at the destination and complete immediately), so the textbook
    // exchange-ordered-wrong bug manifests at the receives — both ranks
    // block receiving before either sends.
    let clock = harness::Stopwatch::start();
    let report = check(2, &fast(), |comm| {
        let peer = 1 - comm.rank();
        let mut buf = [0u64];
        comm.recv(&mut buf, peer, 42);
        comm.send(&[comm.rank() as u64], peer, 42);
    });
    let elapsed = clock.elapsed_secs();
    assert!(
        elapsed < 2.0,
        "diagnosis must come from the wait-for graph, not a timeout ({elapsed:.2}s)"
    );
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == FindingClass::Deadlock)
        .expect("deadlock finding");
    assert_eq!(finding.ranks, vec![0, 1], "the actual cycle members");
    assert!(
        finding.summary.contains("cycle"),
        "a 2-cycle, not a generic stall: {}",
        finding.summary
    );
    // The diagnosis names what each rank blocks on.
    assert!(finding.detail.contains("rank 0"), "{}", finding.detail);
    assert!(finding.detail.contains("rank 1"), "{}", finding.detail);
}

#[test]
fn three_rank_receive_ring_reports_full_cycle() {
    let clock = harness::Stopwatch::start();
    let report = check(3, &fast(), |comm| {
        // Every rank receives from its left neighbor before anyone sends:
        // a 3-cycle in the wait-for graph.
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let right = (comm.rank() + 1) % comm.size();
        let mut buf = [0u64];
        comm.recv(&mut buf, left, 7);
        comm.send(&[1u64], right, 7);
    });
    assert!(clock.elapsed_secs() < 2.0);
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == FindingClass::Deadlock)
        .expect("deadlock finding");
    let mut ranks = finding.ranks.clone();
    ranks.sort_unstable();
    assert_eq!(ranks, vec![0, 1, 2], "all three ring members");
}

#[test]
fn bcast_root_mismatch_is_collective_divergence() {
    // Both ranks call bcast at the same call index but disagree on the
    // root. With eager "root sends, leaves receive" semantics this can
    // even complete — the misuse is only visible by comparing traces.
    let report = check(2, &fast(), |comm| {
        let mut buf = [comm.rank() as u64];
        let root = comm.rank(); // everyone thinks they are the root
        comm.bcast(&mut buf, root);
    });
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == FindingClass::CollectiveDivergence)
        .expect("collective-divergence finding:\n{report}");
    assert!(
        finding.summary.contains("bcast"),
        "names the operation: {}",
        finding.summary
    );
    assert!(
        finding.summary.contains("root"),
        "names the mismatched root: {}",
        finding.summary
    );
}

#[test]
fn collective_order_divergence_barrier_vs_reduce() {
    // Rank 0 calls barrier-then-allreduce, rank 1 allreduce-then-barrier.
    // The traces disagree on which operation call #0 on the world
    // communicator is.
    let clock = harness::Stopwatch::start();
    let report = check(2, &fast(), |comm| {
        let mut x = [1u64];
        if comm.rank() == 0 {
            comm.barrier();
            comm.allreduce(&mut x, mp::Op::Sum);
        } else {
            comm.allreduce(&mut x, mp::Op::Sum);
            comm.barrier();
        }
    });
    assert!(clock.elapsed_secs() < 2.0);
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == FindingClass::CollectiveDivergence)
        .expect("collective-divergence finding");
    assert!(
        finding.summary.contains("barrier") && finding.summary.contains("allreduce"),
        "names both diverging operations: {}",
        finding.summary
    );
}

#[test]
fn unreceived_tag_is_a_tag_leak() {
    // Rank 0 sends on tags 5 and 6; rank 1 only ever receives tag 6. The
    // tag-5 message sits in its lane at finalize and rank 1's trace shows
    // no receive on that tag at all: a leak, not a count mismatch.
    let report = check(2, &fast(), |comm| {
        if comm.rank() == 0 {
            comm.send(&[10u64], 1, 5);
            comm.send(&[20u64], 1, 6);
        } else {
            let mut buf = [0u64];
            comm.recv(&mut buf, 0, 6);
            assert_eq!(buf[0], 20);
        }
        comm.barrier();
    });
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == FindingClass::TagLeak)
        .expect("tag-leak finding");
    assert_eq!(finding.ranks, vec![0, 1], "sender and receiver");
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.class == FindingClass::Deadlock),
        "the program completes; this is a finalize-time lint"
    );
}

#[test]
fn excess_sends_on_a_received_tag_are_unmatched_sends() {
    let report = check(2, &fast(), |comm| {
        if comm.rank() == 0 {
            comm.send(&[1u64], 1, 9);
            comm.send(&[2u64], 1, 9);
            comm.send(&[3u64], 1, 9);
        } else {
            let mut buf = [0u64];
            comm.recv(&mut buf, 0, 9);
        }
        comm.barrier();
    });
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == FindingClass::UnmatchedSend)
        .expect("unmatched-send finding");
    assert_eq!(finding.ranks, vec![0, 1]);
    assert!(
        finding.summary.contains("2 message(s)"),
        "counts the queued leftovers: {}",
        finding.summary
    );
}

#[test]
fn wildcard_receive_with_two_live_senders_is_a_race() {
    // Ranks 1 and 2 both send to rank 0, which syncs (so both messages
    // are definitely queued) and then receives with a wildcard source:
    // at match time two candidate lanes are nonempty, so the result is
    // arrival-order dependent.
    let report = check(3, &sweep(), |comm| {
        if comm.rank() == 0 {
            let mut sync = [0u64];
            comm.recv(&mut sync, 1, 99);
            comm.recv(&mut sync, 2, 99);
            let (_, src1, _) = comm.recv_any::<u64>(None, Some(1));
            let (_, src2, _) = comm.recv_any::<u64>(None, Some(1));
            assert_ne!(src1, src2);
        } else {
            comm.send(&[comm.rank() as u64], 0, 1);
            comm.send(&[1u64], 0, 99); // sync AFTER the racy send
        }
        comm.barrier();
    });
    let finding = report
        .findings
        .iter()
        .find(|f| f.class == FindingClass::WildcardRace)
        .expect("wildcard-race finding");
    assert_eq!(finding.ranks, vec![0], "the receiving rank races");
}

#[test]
fn exact_source_receives_are_not_flagged_as_races() {
    // Same traffic as above but with pinned sources: deterministic, no
    // finding of any class.
    let report = check(3, &sweep(), |comm| {
        if comm.rank() == 0 {
            let mut buf = [0u64];
            comm.recv(&mut buf, 1, 1);
            comm.recv(&mut buf, 2, 1);
        } else {
            comm.send(&[comm.rank() as u64], 0, 1);
        }
        comm.barrier();
    });
    assert!(report.clean(), "unexpected findings:\n{report}");
}

#[test]
fn report_json_carries_the_gallery_finding() {
    let report = check(2, &fast(), |comm| {
        let peer = 1 - comm.rank();
        let mut buf = [0u64];
        comm.recv(&mut buf, peer, 3);
        comm.send(&buf, peer, 3);
    });
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"mpcheck-report-v2\""));
    assert!(json.contains("\"class\": \"deadlock\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // And the v2 document round-trips losslessly.
    let back = mpcheck::Report::from_json(&json).expect("parse back");
    assert_eq!(back.to_json(), json);
}

#[test]
fn explorer_covers_the_gallery_without_seeds() {
    // The integration-level acceptance check for the DPOR explorer: the
    // same misuse patterns this gallery exercises under seeded
    // perturbation are found by *enumerating* schedules — one seed, no
    // randomness — each with a replayable counterexample.
    for entry in mpcheck::gallery::entries() {
        let report = entry.explore(&mpcheck::ExploreOptions {
            max_schedules: 64,
            ..mpcheck::ExploreOptions::default()
        });
        let stats = report.schedules.expect("explorer accounting");
        assert!(stats.visited >= 1, "{}: no schedules visited", entry.name);
        match entry.expect {
            Some(class) => {
                let finding = report
                    .findings
                    .iter()
                    .find(|f| f.class == class)
                    .unwrap_or_else(|| {
                        panic!("{}: expected a {class} finding:\n{report}", entry.name)
                    });
                assert!(
                    finding.counterexample.is_some(),
                    "{}: finding is not replayable",
                    entry.name
                );
            }
            None => assert!(report.clean(), "{}: dirty control:\n{report}", entry.name),
        }
    }
}
