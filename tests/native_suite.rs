//! End-to-end native runs: the complete HPCC suite and the IMB subset
//! executing for real on host threads, with every built-in verification
//! active — the "run the benchmarks yourself" half of the reproduction.

use hpcc::suite::{run_native, SuiteConfig};

#[test]
fn hpcc_suite_verifies_on_power_of_two_ranks() {
    let s = run_native(4, &SuiteConfig::small(4));
    assert!(s.all_passed, "{s:?}");
    assert!(s.ghpl > 0.0 && s.ptrans > 0.0 && s.gups > 0.0 && s.gfft > 0.0);
    assert!(s.stream_copy > 0.0 && s.ep_dgemm > 0.0 && s.ring_bw > 0.0);
}

#[test]
fn hpcc_suite_verifies_on_odd_ranks() {
    let s = run_native(5, &SuiteConfig::small(5));
    assert!(s.all_passed, "{s:?}");
    // Power-of-two-only benchmarks are skipped, not failed.
    assert_eq!(s.gups, 0.0);
    assert_eq!(s.gfft, 0.0);
}

#[test]
fn hpcc_hpl_scales_down_to_one_rank() {
    let s = run_native(1, &SuiteConfig::small(1));
    assert!(s.all_passed, "{s:?}");
}

#[test]
fn imb_full_subset_runs_at_1mib() {
    // The paper's headline size on every benchmark, natively.
    for bench in imb::Benchmark::ALL {
        let p = bench.min_procs().max(4);
        let bytes = if bench.sized() { 1 << 20 } else { 0 };
        let m = imb::run_native(bench, p, bytes, 2);
        assert!(m.t_max_us() > 0.0, "{bench}");
        assert!(m.t_min_us() <= m.t_max_us(), "{bench}");
    }
}

#[test]
fn imb_size_sweep_is_monotone_in_time() {
    // Moving 1024x the payload must take longer per call — a robust
    // check of the measurement plumbing that holds even on loaded hosts
    // and unoptimised builds (bandwidth itself is too jittery to order).
    let small = imb::run_native(imb::Benchmark::Sendrecv, 4, 1 << 10, 20);
    let large = imb::run_native(imb::Benchmark::Sendrecv, 4, 1 << 20, 5);
    assert!(
        large.t_max_us() > small.t_max_us(),
        "1 MiB should take longer than 1 KiB: {large:?} vs {small:?}"
    );
    assert!(small.bandwidth_mbs().unwrap() > 0.0);
    assert!(large.bandwidth_mbs().unwrap() > 0.0);
}

#[test]
fn hpl_residual_quality_across_block_sizes() {
    for nb in [8usize, 17, 32] {
        let results = mp::run(4, |comm| {
            hpcc::hpl::run(
                comm,
                &hpcc::hpl::HplConfig {
                    n: 120,
                    nb,
                    ..hpcc::hpl::HplConfig::default()
                },
            )
        });
        assert!(
            results[0].passed,
            "nb={nb}: residual {}",
            results[0].residual
        );
    }
}

#[test]
fn random_access_gups_verifies_at_scale_points() {
    for p in [2usize, 8] {
        let cfg = hpcc::random_access::RandomAccessConfig {
            log2_size: 14,
            updates_per_entry: 1,
            batch: 256,
        };
        let results = mp::run(p, |comm| hpcc::random_access::run(comm, &cfg));
        assert!(results[0].passed, "p={p}");
        assert_eq!(results[0].updates, 1 << 14);
    }
}
